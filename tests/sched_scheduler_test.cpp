#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "failure/trace.hpp"
#include "obs/trace.hpp"
#include "torus/index.hpp"

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(kBgl);
  return instance;
}

int entry_of_box(const Box& box) {
  const Box canon = canonicalize(kBgl, box);
  for (int i = 0; i < catalog().num_entries(); ++i) {
    if (catalog().entry(i).box == canon) return i;
  }
  return -1;
}

NodeSet occ_of(const std::vector<RunningJob>& running) {
  NodeSet occ(128);
  for (const RunningJob& r : running) occ |= catalog().entry(r.entry_index).mask;
  return occ;
}

TEST(Scheduler, StartsEveryJobThatFitsFcfs) {
  NullPredictor predictor(128);
  const auto sched = make_krevat_scheduler(catalog(), predictor);
  const std::vector<WaitingJob> queue = {
      WaitingJob{0, 64, 64, 100.0},
      WaitingJob{1, 32, 32, 100.0},
      WaitingJob{2, 32, 32, 100.0},
  };
  const auto decision = sched->schedule(0.0, queue, {}, NodeSet(128));
  ASSERT_EQ(decision.starts.size(), 3u);
  EXPECT_TRUE(decision.migrations.empty());
  // Starts respect queue order.
  EXPECT_EQ(decision.starts[0].id, 0u);
  EXPECT_EQ(decision.starts[1].id, 1u);
  EXPECT_EQ(decision.starts[2].id, 2u);
  // No overlap among chosen partitions.
  NodeSet unioned(128);
  for (const Start& s : decision.starts) {
    const NodeSet& mask = catalog().entry(s.entry_index).mask;
    EXPECT_FALSE(unioned.intersects(mask));
    unioned |= mask;
  }
}

TEST(Scheduler, HeadBlockedStopsFcfsWithoutBackfill) {
  NullPredictor predictor(128);
  SchedulerConfig config;
  config.backfill = BackfillMode::kNone;
  config.migration = false;
  const auto sched = make_krevat_scheduler(catalog(), predictor, config);

  // Half machine busy; head needs the full machine, a small job waits behind.
  const int half = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const std::vector<RunningJob> running = {RunningJob{99, half, 1000.0}};
  const std::vector<WaitingJob> queue = {
      WaitingJob{0, 128, 128, 100.0},
      WaitingJob{1, 8, 8, 100.0},
  };
  const auto decision = sched->schedule(0.0, queue, running, occ_of(running));
  EXPECT_TRUE(decision.starts.empty());  // strict FCFS blocks everyone
}

TEST(Scheduler, BackfillStartsShortJobBehindBlockedHead) {
  NullPredictor predictor(128);
  SchedulerConfig config;
  config.migration = false;
  const auto sched = make_krevat_scheduler(catalog(), predictor, config);

  const int half = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const std::vector<RunningJob> running = {RunningJob{99, half, 1000.0}};
  // Head needs 128 nodes (reservation at t=1000); the filler finishes at
  // t = 0 + 500 <= 1000, so it may run anywhere.
  const std::vector<WaitingJob> queue = {
      WaitingJob{0, 128, 128, 2000.0},
      WaitingJob{1, 8, 8, 500.0},
  };
  const auto decision = sched->schedule(0.0, queue, running, occ_of(running));
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_EQ(decision.starts[0].id, 1u);
}

TEST(Scheduler, BackfillNeverDelaysHeadReservation) {
  NullPredictor predictor(128);
  SchedulerConfig config;
  config.migration = false;
  const auto sched = make_krevat_scheduler(catalog(), predictor, config);

  const int half = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const std::vector<RunningJob> running = {RunningJob{99, half, 1000.0}};
  // Head wants the free half (reservation = now on the free half? no: it
  // wants 128 nodes -> reservation at 1000 over the whole machine). A long
  // filler (estimate 5000 > 1000) would intersect any reservation of the
  // full machine, so it must NOT start.
  const std::vector<WaitingJob> queue = {
      WaitingJob{0, 128, 128, 2000.0},
      WaitingJob{1, 64, 64, 5000.0},
  };
  const auto decision = sched->schedule(0.0, queue, running, occ_of(running));
  EXPECT_TRUE(decision.starts.empty());
}

TEST(Scheduler, BackfillUsesDisjointPartitionForLongFiller) {
  NullPredictor predictor(128);
  SchedulerConfig config;
  config.migration = false;
  const auto sched = make_krevat_scheduler(catalog(), predictor, config);

  // Head wants 64 nodes; it reserves the half freed at t=1000. A long
  // filler fitting in the OTHER free region may start because it is
  // disjoint from the reservation.
  const int busy = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 3}});  // z0-2
  const std::vector<RunningJob> running = {RunningJob{99, busy, 1000.0}};
  // Free: z3-7 (80 nodes). Head wants 128 -> blocked, reservation at 1000 =
  // whole machine... that intersects everything. Make head want 96: no shape
  // of 96 free now (4x4x6 needs 6 contiguous planes, only 5 free) ->
  // reservation at t=1000. Filler of 64 nodes fits in z4-7 and the
  // reservation (full machine region? 96-node partition somewhere) may or
  // may not intersect. To keep the test deterministic use a head of 64 with
  // no current fit: occupy z3 too.
  const int extra = entry_of_box(Box{Coord{0, 0, 3}, Triple{4, 4, 1}});
  std::vector<RunningJob> running2 = {RunningJob{99, busy, 1000.0},
                                      RunningJob{98, extra, 9000.0}};
  // Free: z4-7 = 64 nodes: a 64-node head DOES fit; use 4x4x4 head? It fits
  // immediately then. Instead: head 128, filler 32 in z4-5 with estimate
  // beyond 1000: must still start iff disjoint from reservation. The 128
  // reservation covers everything at t=9000 -> filler with estimate 10000
  // intersects; filler with estimate 8000 <= 9000 starts.
  const std::vector<WaitingJob> queue = {
      WaitingJob{0, 128, 128, 500.0},
      WaitingJob{1, 32, 32, 8000.0},
      WaitingJob{2, 32, 32, 10000.0},
  };
  const auto decision = sched->schedule(0.0, queue, running2, occ_of(running2));
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_EQ(decision.starts[0].id, 1u);
}

TEST(Scheduler, MigrationCompactsForBlockedHead) {
  NullPredictor predictor(128);
  SchedulerConfig config;
  config.backfill = BackfillMode::kNone;
  config.migration = true;
  const auto sched = make_krevat_scheduler(catalog(), predictor, config);

  const int a = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 2}});
  const int b = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 2}});
  const std::vector<RunningJob> running = {RunningJob{10, a, 100.0},
                                           RunningJob{11, b, 200.0}};
  const std::vector<WaitingJob> queue = {WaitingJob{0, 64, 64, 300.0}};
  const auto decision = sched->schedule(0.0, queue, running, occ_of(running));
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_EQ(decision.starts[0].id, 0u);
  EXPECT_FALSE(decision.migrations.empty());
  // Started partition must not overlap the post-migration running jobs.
  NodeSet unioned(128);
  for (const Migration& m : decision.migrations) {
    // applied below via running_after reconstruction
    (void)m;
  }
}

TEST(Scheduler, MigrationDisabledLeavesHeadBlocked) {
  NullPredictor predictor(128);
  SchedulerConfig config;
  config.backfill = BackfillMode::kNone;
  config.migration = false;
  const auto sched = make_krevat_scheduler(catalog(), predictor, config);

  const int a = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 2}});
  const int b = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 2}});
  const std::vector<RunningJob> running = {RunningJob{10, a, 100.0},
                                           RunningJob{11, b, 200.0}};
  const std::vector<WaitingJob> queue = {WaitingJob{0, 64, 64, 300.0}};
  const auto decision = sched->schedule(0.0, queue, running, occ_of(running));
  EXPECT_TRUE(decision.starts.empty());
  EXPECT_TRUE(decision.migrations.empty());
}

TEST(Scheduler, BalancingWithPerfectPredictionAvoidsDoomedPartition) {
  // Node 5 fails at t=50; a job with estimate 100 placed now must avoid it
  // when an equal-quality alternative exists.
  FailureTrace trace({{50.0, 5}}, 128);
  BalancingPredictor predictor(trace, 1.0);
  const auto sched = make_balancing_scheduler(catalog(), predictor);

  const std::vector<WaitingJob> queue = {WaitingJob{0, 64, 64, 100.0}};
  const auto decision = sched->schedule(0.0, queue, {}, NodeSet(128));
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_FALSE(catalog().entry(decision.starts[0].entry_index).mask.test(5));
}

TEST(Scheduler, TieBreakWithPerfectAccuracyAvoidsDoomedPartition) {
  FailureTrace trace({{50.0, 5}}, 128);
  TieBreakPredictor predictor(trace, 1.0);
  const auto sched = make_tiebreak_scheduler(catalog(), predictor);

  const std::vector<WaitingJob> queue = {WaitingJob{0, 64, 64, 100.0}};
  const auto decision = sched->schedule(0.0, queue, {}, NodeSet(128));
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_FALSE(catalog().entry(decision.starts[0].entry_index).mask.test(5));
}

TEST(Scheduler, SchedulerIsPureFunctionOfInputs) {
  FailureTrace trace({{50.0, 5}, {70.0, 9}}, 128);
  TieBreakPredictor predictor(trace, 0.5);
  const auto sched = make_tiebreak_scheduler(catalog(), predictor);
  const std::vector<WaitingJob> queue = {WaitingJob{0, 32, 32, 100.0},
                                         WaitingJob{1, 32, 32, 200.0}};
  const auto d1 = sched->schedule(0.0, queue, {}, NodeSet(128));
  const auto d2 = sched->schedule(0.0, queue, {}, NodeSet(128));
  ASSERT_EQ(d1.starts.size(), d2.starts.size());
  for (std::size_t i = 0; i < d1.starts.size(); ++i) {
    EXPECT_EQ(d1.starts[i].entry_index, d2.starts[i].entry_index);
  }
}

TEST(Scheduler, RepackRewritesPendingStartAndItsPlacementRecord) {
  // Regression: when a same-pass repack relocated a job started earlier in
  // the pass, the pending Start was rewritten but the paired
  // PlacementRecord kept the policy's original (never committed) entry —
  // the trace reported a placement that did not happen.
  //
  // Two single-slab jobs run at z=0 and z=4, fragmenting the torus into
  // two 3-slab runs. Job 0 (16 nodes) starts in one of the runs; job 1
  // (64 nodes) needs 4 contiguous slabs and blocks, triggering a repack.
  // try_repack re-places all three live jobs largest-first from scratch,
  // which packs them into slabs z=0,1,2 — guaranteed to relocate job 0,
  // whose pending start (and audit record) must follow.
  std::ostringstream out;
  obs::TraceSink sink(out);
  NullPredictor predictor(128);
  SchedulerConfig config;
  config.backfill = BackfillMode::kNone;
  config.migration = true;
  const auto sched = make_krevat_scheduler(catalog(), predictor, config);
  obs::Observer observer;
  observer.trace = &sink;
  sched->set_observer(observer);

  const int slab0 = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 1}});
  const int slab4 = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 1}});
  ASSERT_GE(slab0, 0);
  ASSERT_GE(slab4, 0);
  const std::vector<RunningJob> running = {RunningJob{10, slab0, 500.0},
                                           RunningJob{11, slab4, 400.0}};
  const std::vector<WaitingJob> queue = {WaitingJob{0, 16, 16, 300.0},
                                         WaitingJob{1, 64, 64, 100.0}};

  // The entry the policy picks for job 0 when no repack interferes.
  SchedulerConfig no_migration = config;
  no_migration.migration = false;
  const auto plain = make_krevat_scheduler(catalog(), predictor, no_migration);
  const auto undisturbed =
      plain->schedule(0.0, queue, running, occ_of(running));
  ASSERT_EQ(undisturbed.starts.size(), 1u);
  const int original_entry = undisturbed.starts[0].entry_index;

  const auto decision = sched->schedule(0.0, queue, running, occ_of(running));
  ASSERT_EQ(decision.starts.size(), 2u);
  EXPECT_EQ(decision.starts[0].id, 0u);
  EXPECT_EQ(decision.starts[1].id, 1u);
  // The repack relocated job 0's pending start...
  EXPECT_NE(decision.starts[0].entry_index, original_entry);
  // ...as a rewrite, not as a migration of a not-yet-running job...
  for (const Migration& m : decision.migrations) {
    EXPECT_NE(m.id, 0u);
  }
  // ...and the audit record reports the committed partition, not the
  // policy's pre-repack choice.
  ASSERT_EQ(decision.placements.size(), decision.starts.size());
  for (std::size_t i = 0; i < decision.starts.size(); ++i) {
    EXPECT_EQ(decision.placements[i].id, decision.starts[i].id);
    EXPECT_EQ(decision.placements[i].entry_index,
              decision.starts[i].entry_index);
  }
  // Committed starts and post-migration running jobs must not overlap.
  NodeSet occ(128);
  for (const RunningJob& r : running) {
    int entry = r.entry_index;
    for (const Migration& m : decision.migrations) {
      if (m.id == r.id) entry = m.to_entry;
    }
    EXPECT_FALSE(occ.intersects(catalog().entry(entry).mask));
    occ |= catalog().entry(entry).mask;
  }
  for (const Start& s : decision.starts) {
    EXPECT_FALSE(occ.intersects(catalog().entry(s.entry_index).mask));
    occ |= catalog().entry(s.entry_index).mask;
  }

  // The incremental index must not change any of it.
  FreePartitionIndex index(catalog());
  index.reset(occ_of(running));
  const auto indexed =
      sched->schedule(0.0, queue, running, occ_of(running), &index);
  ASSERT_EQ(indexed.starts.size(), decision.starts.size());
  for (std::size_t i = 0; i < decision.starts.size(); ++i) {
    EXPECT_EQ(indexed.starts[i].id, decision.starts[i].id);
    EXPECT_EQ(indexed.starts[i].entry_index, decision.starts[i].entry_index);
  }
  ASSERT_EQ(indexed.migrations.size(), decision.migrations.size());
  for (std::size_t i = 0; i < decision.migrations.size(); ++i) {
    EXPECT_EQ(indexed.migrations[i].id, decision.migrations[i].id);
    EXPECT_EQ(indexed.migrations[i].to_entry, decision.migrations[i].to_entry);
  }
}

TEST(Scheduler, NamesReportPolicies) {
  NullPredictor predictor(128);
  EXPECT_EQ(make_krevat_scheduler(catalog(), predictor)->name(), "mfp-loss");
  EXPECT_EQ(make_balancing_scheduler(catalog(), predictor)->name(), "balancing");
  EXPECT_EQ(make_tiebreak_scheduler(catalog(), predictor)->name(), "tie-break");
}

TEST(Scheduler, AllocSizeUsedForPlacementSearch) {
  // A 13-node request is rounded to alloc_size 14 by the caller; the
  // scheduler must place the 14-node partition.
  NullPredictor predictor(128);
  const auto sched = make_krevat_scheduler(catalog(), predictor);
  const std::vector<WaitingJob> queue = {WaitingJob{0, 13, 14, 100.0}};
  const auto decision = sched->schedule(0.0, queue, {}, NodeSet(128));
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_EQ(catalog().entry(decision.starts[0].entry_index).size, 14);
}

}  // namespace
}  // namespace bgl
