#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/math.hpp"
#include "workload/analysis.hpp"

namespace bgl {
namespace {

TEST(Synthetic, DeterministicInSeed) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 500;
  const Workload a = generate_workload(model, 42);
  const Workload b = generate_workload(model, 42);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_DOUBLE_EQ(a.jobs[i].runtime, b.jobs[i].runtime);
    EXPECT_EQ(a.jobs[i].size, b.jobs[i].size);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 200;
  const Workload a = generate_workload(model, 1);
  const Workload b = generate_workload(model, 2);
  int differing = 0;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].runtime != b.jobs[i].runtime) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(Synthetic, OfferedLoadHitsTarget) {
  for (const auto& model :
       {SyntheticModel::nasa(), SyntheticModel::sdsc(), SyntheticModel::llnl()}) {
    SyntheticModel m = model;
    m.num_jobs = 2000;
    const Workload w = generate_workload(m, 7);
    const WorkloadSummary s = summarize(w);
    // The affine rescale targets the load exactly up to the open last gap.
    EXPECT_NEAR(s.offered_load, m.offered_load, 0.05) << m.name;
  }
}

TEST(Synthetic, SizesRespectBounds) {
  SyntheticModel model = SyntheticModel::llnl();
  model.num_jobs = 2000;
  const Workload w = generate_workload(model, 3);
  for (const Job& j : w.jobs) {
    EXPECT_GE(j.size, model.min_size);
    EXPECT_LE(j.size, model.max_size);
  }
}

TEST(Synthetic, NasaIsPurePowerOfTwo) {
  SyntheticModel model = SyntheticModel::nasa();
  model.num_jobs = 2000;
  const Workload w = generate_workload(model, 11);
  for (const Job& j : w.jobs) EXPECT_TRUE(is_pow2(j.size)) << j.size;
}

TEST(Synthetic, SdscHasNonPowerOfTwoJobs) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 3000;
  const Workload w = generate_workload(model, 13);
  const WorkloadSummary s = summarize(w);
  EXPECT_LT(s.pow2_size_fraction, 0.95);
  EXPECT_GT(s.pow2_size_fraction, 0.6);
}

TEST(Synthetic, RuntimesWithinModelBounds) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 2000;
  const Workload w = generate_workload(model, 17);
  for (const Job& j : w.jobs) {
    EXPECT_GE(j.runtime, model.min_runtime);
    EXPECT_LE(j.runtime, model.max_runtime);
  }
}

TEST(Synthetic, EstimatesAreUpperBounds) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 2000;
  const Workload w = generate_workload(model, 19);
  std::size_t exact = 0;
  for (const Job& j : w.jobs) {
    EXPECT_GE(j.estimate, j.runtime);
    if (j.estimate == j.runtime) ++exact;
  }
  // A point mass of exact estimates exists.
  EXPECT_GT(exact, w.jobs.size() / 20);
  EXPECT_LT(exact, w.jobs.size() / 2);
}

TEST(Synthetic, ArrivalsSortedAndStartAtZero) {
  SyntheticModel model = SyntheticModel::nasa();
  model.num_jobs = 1000;
  const Workload w = generate_workload(model, 23);
  EXPECT_DOUBLE_EQ(w.jobs.front().arrival, 0.0);
  for (std::size_t i = 1; i < w.jobs.size(); ++i) {
    EXPECT_GE(w.jobs[i].arrival, w.jobs[i - 1].arrival);
  }
}

TEST(Synthetic, LlnlIsLargeJobHeavy) {
  SyntheticModel llnl = SyntheticModel::llnl();
  SyntheticModel nasa = SyntheticModel::nasa();
  llnl.num_jobs = 2000;
  nasa.num_jobs = 2000;
  const WorkloadSummary sl = summarize(generate_workload(llnl, 29));
  const WorkloadSummary sn = summarize(generate_workload(nasa, 29));
  // Relative to machine size, LLNL jobs are bigger on average.
  EXPECT_GT(sl.size.mean() / 256.0, sn.size.mean() / 128.0);
}

TEST(Synthetic, ModelValidation) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 0;
  EXPECT_THROW(generate_workload(model, 1), ContractViolation);
  model = SyntheticModel::sdsc();
  model.min_size = 200;  // > max_size
  EXPECT_THROW(generate_workload(model, 1), ContractViolation);
  model = SyntheticModel::sdsc();
  model.offered_load = 1.5;
  EXPECT_THROW(generate_workload(model, 1), ContractViolation);
}

}  // namespace
}  // namespace bgl
