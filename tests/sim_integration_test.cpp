// End-to-end invariants on realistic synthetic workloads: conservation of
// capacity, determinism, FCFS integrity, and the paper's headline ordering
// (fault-aware >= fault-oblivious under failures; no failures => all equal).
#include <gtest/gtest.h>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "workload/synthetic.hpp"

namespace bgl {
namespace {

struct Inputs {
  Workload workload;
  FailureTrace trace;
};

Inputs small_inputs(double failures_per_day, double load = 1.0,
                    std::uint64_t seed = 42, int num_jobs = 400) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = num_jobs;
  Workload w = generate_workload(model, seed);
  w = rescale_sizes(w, 128);
  if (load != 1.0) w = scale_load(w, load);
  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  const auto events =
      static_cast<std::size_t>(failures_per_day * span / 86400.0);
  FailureModel fm = FailureModel::bluegene_l(events, span);
  return Inputs{std::move(w), generate_failures(fm, seed ^ 0x5bd1e995)};
}

SimConfig config_for(SchedulerKind kind, double alpha) {
  SimConfig config;
  config.scheduler = kind;
  config.alpha = alpha;
  return config;
}

class SchedulerSweep
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, double>> {};

TEST_P(SchedulerSweep, CapacityAccountingIsConserved) {
  const auto [kind, alpha] = GetParam();
  const Inputs in = small_inputs(20.0);
  const SimResult r = run_simulation(in.workload, in.trace, config_for(kind, alpha));

  EXPECT_EQ(r.jobs_completed, in.workload.jobs.size());
  EXPECT_GT(r.span, 0.0);
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_GE(r.unused, 0.0);
  EXPECT_GE(r.lost, -1e-9);
  EXPECT_NEAR(r.utilization + r.unused + r.lost, 1.0, 1e-9);
  EXPECT_GE(r.avg_bounded_slowdown, 1.0 - 1e-9);
  EXPECT_GE(r.avg_response, r.avg_wait);
}

TEST_P(SchedulerSweep, DeterministicAcrossRuns) {
  const auto [kind, alpha] = GetParam();
  const Inputs in = small_inputs(15.0);
  const SimConfig config = config_for(kind, alpha);
  const SimResult a = run_simulation(in.workload, in.trace, config);
  const SimResult b = run_simulation(in.workload, in.trace, config);
  EXPECT_DOUBLE_EQ(a.avg_bounded_slowdown, b.avg_bounded_slowdown);
  EXPECT_DOUBLE_EQ(a.avg_response, b.avg_response);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.job_kills, b.job_kills);
  EXPECT_EQ(a.migrations, b.migrations);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndAlphas, SchedulerSweep,
    ::testing::Values(std::make_tuple(SchedulerKind::kKrevat, 0.0),
                      std::make_tuple(SchedulerKind::kBalancing, 0.0),
                      std::make_tuple(SchedulerKind::kBalancing, 0.1),
                      std::make_tuple(SchedulerKind::kBalancing, 0.5),
                      std::make_tuple(SchedulerKind::kBalancing, 1.0),
                      std::make_tuple(SchedulerKind::kTieBreak, 0.1),
                      std::make_tuple(SchedulerKind::kTieBreak, 0.9)));

TEST_P(SchedulerSweep, PartitionIndexDoesNotChangeAnyOutcome) {
  // The incremental free-partition index is a pure acceleration: every
  // decision must be bit-for-bit what the scan-based reference path
  // produces, end to end — including under failures, migration and
  // post-failure node downtime, which exercise every index update path in
  // the driver.
  const auto [kind, alpha] = GetParam();
  const Inputs in = small_inputs(20.0);
  SimConfig with = config_for(kind, alpha);
  with.sched.migration = true;
  with.failure_semantics = FailureSemantics::kDownFor;
  with.node_downtime = 3600.0;
  with.collect_outcomes = true;
  SimConfig without = with;
  with.use_partition_index = true;
  without.use_partition_index = false;

  const SimResult a = run_simulation(in.workload, in.trace, with);
  const SimResult b = run_simulation(in.workload, in.trace, without);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.job_kills, b.job_kills);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.starts_on_flagged, b.starts_on_flagged);
  EXPECT_DOUBLE_EQ(a.avg_wait, b.avg_wait);
  EXPECT_DOUBLE_EQ(a.avg_response, b.avg_response);
  EXPECT_DOUBLE_EQ(a.avg_bounded_slowdown, b.avg_bounded_slowdown);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.lost, b.lost);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_DOUBLE_EQ(a.outcomes[i].last_start, b.outcomes[i].last_start);
  }
}

TEST(Integration, NoFailuresMakesAllSchedulersEquivalent) {
  const Inputs in = small_inputs(0.0);
  const SimResult krevat =
      run_simulation(in.workload, in.trace, config_for(SchedulerKind::kKrevat, 0.0));
  const SimResult balancing = run_simulation(in.workload, in.trace,
                                             config_for(SchedulerKind::kBalancing, 0.7));
  const SimResult tiebreak = run_simulation(in.workload, in.trace,
                                            config_for(SchedulerKind::kTieBreak, 0.7));
  // With no failures the predictors never flag anything, so all three
  // schedulers reduce to the same MFP placement sequence.
  EXPECT_DOUBLE_EQ(krevat.avg_response, balancing.avg_response);
  EXPECT_DOUBLE_EQ(krevat.avg_response, tiebreak.avg_response);
  EXPECT_EQ(krevat.job_kills, 0u);
}

TEST(Integration, FailuresDegradeTheOblviousScheduler) {
  const Inputs clean = small_inputs(0.0);
  const Inputs faulty = small_inputs(10.0);
  const SimConfig config = config_for(SchedulerKind::kKrevat, 0.0);
  const SimResult r_clean = run_simulation(clean.workload, clean.trace, config);
  const SimResult r_faulty = run_simulation(faulty.workload, faulty.trace, config);
  EXPECT_GT(r_faulty.job_kills, 0u);
  EXPECT_GT(r_faulty.avg_bounded_slowdown, r_clean.avg_bounded_slowdown);
  EXPECT_GT(r_faulty.lost, r_clean.lost);
}

TEST(Integration, PerfectBalancingPredictionBeatsOblivious) {
  // Averaged over seeds: individual saturated runs are noisy, the aggregate
  // effect (the paper's headline) must hold.
  std::size_t kills_oblivious = 0;
  std::size_t kills_aware = 0;
  double sld_oblivious = 0.0;
  double sld_aware = 0.0;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const Inputs in = small_inputs(8.0, 1.0, seed, 500);
    const SimResult o =
        run_simulation(in.workload, in.trace, config_for(SchedulerKind::kKrevat, 0.0));
    const SimResult a = run_simulation(in.workload, in.trace,
                                       config_for(SchedulerKind::kBalancing, 1.0));
    kills_oblivious += o.job_kills;
    kills_aware += a.job_kills;
    sld_oblivious += o.avg_bounded_slowdown;
    sld_aware += a.avg_bounded_slowdown;
  }
  EXPECT_LT(kills_aware, kills_oblivious);
  EXPECT_LT(sld_aware, sld_oblivious * 1.02);
}

TEST(Integration, ModestPredictionAlreadyHelps) {
  // The paper's headline: even a = 0.1 yields a meaningful chunk of the
  // benefit. Require balancing at a = 0.1 to cut kills vs the baseline,
  // aggregated across seeds.
  std::size_t kills_oblivious = 0;
  std::size_t kills_aware = 0;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const Inputs in = small_inputs(8.0, 1.0, seed, 500);
    const SimResult o =
        run_simulation(in.workload, in.trace, config_for(SchedulerKind::kKrevat, 0.0));
    const SimResult a = run_simulation(in.workload, in.trace,
                                       config_for(SchedulerKind::kBalancing, 0.1));
    kills_oblivious += o.job_kills;
    kills_aware += a.job_kills;
  }
  EXPECT_LT(kills_aware, kills_oblivious);
}

TEST(Integration, BackfillImprovesResponsiveness) {
  const Inputs in = small_inputs(0.0, 1.2);
  SimConfig with = config_for(SchedulerKind::kKrevat, 0.0);
  SimConfig without = with;
  without.sched.backfill = BackfillMode::kNone;
  const SimResult r_with = run_simulation(in.workload, in.trace, with);
  const SimResult r_without = run_simulation(in.workload, in.trace, without);
  EXPECT_LT(r_with.avg_bounded_slowdown, r_without.avg_bounded_slowdown);
}

TEST(Integration, HigherLoadIncreasesSlowdown) {
  // Failure-free comparison on a longer log: c = 1.2 must raise both the
  // delivered utilization and the average bounded slowdown.
  const Inputs low = small_inputs(0.0, 1.0, 42, 1200);
  const Inputs high = small_inputs(0.0, 1.2, 42, 1200);
  const SimConfig config = config_for(SchedulerKind::kKrevat, 0.0);
  const SimResult r_low = run_simulation(low.workload, low.trace, config);
  const SimResult r_high = run_simulation(high.workload, high.trace, config);
  EXPECT_GT(r_high.avg_bounded_slowdown, r_low.avg_bounded_slowdown);
  EXPECT_GT(r_high.utilization, r_low.utilization);
}

TEST(Integration, TieBreakSeedChangesCoinsButStaysClose) {
  const Inputs in = small_inputs(15.0);
  SimConfig a = config_for(SchedulerKind::kTieBreak, 0.5);
  SimConfig b = a;
  b.seed = 999;
  const SimResult ra = run_simulation(in.workload, in.trace, a);
  const SimResult rb = run_simulation(in.workload, in.trace, b);
  // Different coins may change individual decisions but the run completes
  // with the same job count and sane metrics.
  EXPECT_EQ(ra.jobs_completed, rb.jobs_completed);
  EXPECT_GT(rb.avg_bounded_slowdown, 0.0);
}

TEST(Integration, MigrationReducesBlockingUnderFragmentation) {
  // Migration is a heuristic: require that it actually fires and does not
  // wreck performance (tight bounds are exercised at the unit level).
  const Inputs in = small_inputs(5.0, 1.2);
  SimConfig with = config_for(SchedulerKind::kKrevat, 0.0);
  with.sched.backfill = BackfillMode::kNone;
  with.sched.migration = true;
  SimConfig without = with;
  without.sched.migration = false;
  const SimResult r_with = run_simulation(in.workload, in.trace, with);
  const SimResult r_without = run_simulation(in.workload, in.trace, without);
  EXPECT_GT(r_with.migrations, 0u);
  EXPECT_LE(r_with.avg_bounded_slowdown, r_without.avg_bounded_slowdown * 1.5);
}

}  // namespace
}  // namespace bgl
