// The block catalog (CatalogOptions::Mode::kBlocks): the scale-up
// alternative to full box enumeration. Structure (buddy-style power-of-two
// blocks over contiguous node ids), query equivalence between the
// word-range kernels and the full-width reference scans, and behaviour at
// the real 64 x 32 x 32 BlueGene/L volume.
#include <gtest/gtest.h>

#include <vector>

#include "torus/catalog.hpp"
#include "torus/nodeset.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

CatalogOptions block_options(int min_block, bool full_width = false) {
  CatalogOptions options;
  options.mode = CatalogOptions::Mode::kBlocks;
  options.min_block = min_block;
  options.full_width_scans = full_width;
  return options;
}

TEST(BlockCatalog, BuddyStructureAtFullMachineScale) {
  const Dims dims{64, 32, 32};
  const PartitionCatalog catalog(dims, Topology::kTorus, block_options(256));

  // 65 536 / 256 = 256 leaves; a full buddy hierarchy has 2*256 - 1 nodes.
  ASSERT_EQ(catalog.num_entries(), 511);

  // Sizes are powers of two, descending, with exactly volume/size blocks of
  // each size partitioning the machine (every node covered exactly once).
  int last_size = catalog.num_nodes() + 1;
  for (int s = 65536; s >= 256; s /= 2) {
    const auto [first, last] = catalog.size_range(s);
    EXPECT_EQ(last - first, dims.volume() / s) << "size " << s;
    NodeSet covered(dims.volume());
    int total = 0;
    for (int i = first; i < last; ++i) {
      const auto& entry = catalog.entry(i);
      EXPECT_EQ(entry.size, s);
      EXPECT_LT(entry.size, last_size + 1);
      EXPECT_FALSE(entry.mask.intersects(covered)) << "entry " << i;
      covered |= entry.mask;
      total += entry.mask.count();
    }
    EXPECT_EQ(total, dims.volume()) << "size " << s;
    last_size = s;
  }

  // Jobs round up to the next block size; below min_block they take a leaf.
  EXPECT_EQ(catalog.allocatable_size(1), 256);
  EXPECT_EQ(catalog.allocatable_size(256), 256);
  EXPECT_EQ(catalog.allocatable_size(257), 512);
  EXPECT_EQ(catalog.allocatable_size(40000), 65536);
  EXPECT_EQ(catalog.allocatable_size(65536), 65536);
  EXPECT_EQ(catalog.allocatable_size(65537), -1);
}

TEST(BlockCatalog, EntriesAreContiguousIdRanges) {
  const Dims dims{16, 8, 8};
  const PartitionCatalog catalog(dims, Topology::kTorus, block_options(16));
  for (int i = 0; i < catalog.num_entries(); ++i) {
    const std::vector<int> ids = catalog.entry(i).mask.to_ids();
    ASSERT_FALSE(ids.empty());
    for (std::size_t k = 1; k < ids.size(); ++k) {
      ASSERT_EQ(ids[k], ids[k - 1] + 1) << "entry " << i;
    }
    EXPECT_EQ(ids.front() % catalog.entry(i).size, 0) << "entry " << i;
  }
}

// The word-range kernels (word_begin/word_end/solid fast paths) must give
// the same answer as the full-width reference scans for every query the
// scheduler issues.
TEST(BlockCatalog, WordRangeKernelsMatchFullWidthReference) {
  const Dims dims{16, 8, 8};
  const PartitionCatalog fast(dims, Topology::kTorus, block_options(16));
  const PartitionCatalog reference(dims, Topology::kTorus,
                                   block_options(16, /*full_width=*/true));
  ASSERT_EQ(fast.num_entries(), reference.num_entries());

  Rng rng(0xB10CBEEFu);
  NodeSet occ(dims.volume());
  NodeSet extra(dims.volume());
  for (int round = 0; round < 60; ++round) {
    // Random occupancy / overlay churn, including full and empty extremes.
    for (int k = 0; k < 40; ++k) {
      const int node = static_cast<int>(
          rng.uniform_int(0, static_cast<std::uint64_t>(dims.volume() - 1)));
      if (rng.uniform() < 0.5) {
        occ.test(node) ? occ.reset(node) : occ.set(node);
      } else {
        extra.test(node) ? extra.reset(node) : extra.set(node);
      }
    }

    ASSERT_EQ(fast.mfp(occ), reference.mfp(occ)) << "round " << round;
    ASSERT_EQ(fast.first_free_index(occ), reference.first_free_index(occ));
    ASSERT_EQ(fast.first_free_index_with(occ, extra),
              reference.first_free_index_with(occ, extra));
    ASSERT_EQ(fast.mfp_with(occ, extra), reference.mfp_with(occ, extra));
    for (int s = 16; s <= dims.volume(); s *= 2) {
      std::vector<int> a, b;
      fast.free_entries_of_size(occ, s, a);
      reference.free_entries_of_size(occ, s, b);
      ASSERT_EQ(a, b) << "round " << round << " size " << s;
      ASSERT_EQ(fast.has_free_of_size(occ, s),
                reference.has_free_of_size(occ, s));
    }
  }
}

TEST(BlockCatalog, MinBlockBelowMachineDefaultsSanely) {
  // min_block larger than the machine still yields the single full block.
  const Dims dims{4, 4, 8};
  const PartitionCatalog catalog(dims, Topology::kTorus, block_options(256));
  ASSERT_EQ(catalog.num_entries(), 1);
  EXPECT_EQ(catalog.entry(0).size, 128);
  EXPECT_EQ(catalog.allocatable_size(1), 128);
}

}  // namespace
}  // namespace bgl
