// Differential fuzz harness for FreePartitionIndex (the tentpole's
// equivalence contract): drive long random sequences of occupy / release /
// single-node failure deltas and hold the incremental answers up against
// the scan-based catalog — the reference implementation — and, for the MFP,
// against the independent find_free_all_naive box enumerator.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "torus/catalog.hpp"
#include "torus/finders.hpp"
#include "torus/index.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

int naive_mfp(const Dims& dims, const NodeSet& occ) {
  int best = 0;
  for (const Box& b : find_free_all_naive(dims, occ)) {
    best = std::max(best, b.volume());
  }
  return best;
}

/// >= `deltas` random mutations; every answer compared against the catalog
/// scans, the full invariant check and the naive finder sampled.
void fuzz(const Dims& dims, Topology topology, std::uint64_t seed, int deltas,
          CatalogOptions options = {}) {
  const PartitionCatalog catalog(dims, topology, options);
  FreePartitionIndex index(catalog);
  NodeSet occ(dims.volume());  // reference occupancy, mutated in lockstep
  Rng rng(seed);

  std::vector<int> live;  // entries currently allocated
  std::vector<int> from_index, from_scan;
  for (int t = 0; t < deltas; ++t) {
    const double roll = rng.uniform();
    if (roll < 0.45) {  // allocate a random free partition
      const int e = static_cast<int>(
          rng.uniform_int(0, static_cast<std::uint64_t>(catalog.num_entries() - 1)));
      if (!catalog.entry(e).mask.intersects(occ)) {
        occ |= catalog.entry(e).mask;
        index.occupy(catalog.entry(e).mask);
        live.push_back(e);
      }
    } else if (roll < 0.75 && !live.empty()) {  // release a live partition
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::uint64_t>(live.size() - 1)));
      occ.subtract(catalog.entry(live[i]).mask);
      index.release(catalog.entry(live[i]).mask);
      live[i] = live.back();
      live.pop_back();
    } else {  // single-node failure / recovery (set semantics both ways)
      const int node = static_cast<int>(
          rng.uniform_int(0, static_cast<std::uint64_t>(dims.volume() - 1)));
      if (occ.test(node)) {
        // Only toggle nodes no live partition holds, so the reference
        // occupancy stays the union of live masks plus failed singletons.
        bool held = false;
        for (const int e : live) {
          if (catalog.entry(e).mask.test(node)) {
            held = true;
            break;
          }
        }
        if (!held) {
          occ.reset(node);
          index.release_node(node);
        }
      } else {
        occ.set(node);
        index.occupy_node(node);
      }
    }

    ASSERT_EQ(index.occupied(), occ) << "delta " << t;
    ASSERT_EQ(index.mfp(), catalog.mfp(occ)) << "delta " << t;
    ASSERT_EQ(index.first_free_index(), catalog.first_free_index(occ))
        << "delta " << t;

    const int s = catalog.allocatable_size(static_cast<int>(
        rng.uniform_int(1, static_cast<std::uint64_t>(dims.volume()))));
    ASSERT_GT(s, 0);
    from_index.clear();
    from_scan.clear();
    index.free_entries_of_size(s, from_index);
    catalog.free_entries_of_size(occ, s, from_scan);
    ASSERT_EQ(from_index, from_scan) << "delta " << t << " size " << s;
    ASSERT_EQ(index.has_free_of_size(s), !from_scan.empty());

    if (!from_index.empty()) {  // the policy loop's overlay query
      const NodeSet& extra = catalog.entry(from_index.front()).mask;
      const int hint = index.first_free_index();
      ASSERT_EQ(index.mfp_with(extra, hint < 0 ? 0 : hint),
                catalog.mfp_with(occ, extra, hint < 0 ? 0 : hint))
          << "delta " << t;
    }

    if (t % 100 == 0) {
      ASSERT_NO_THROW(index.check_invariants()) << "delta " << t;
      // The naive box enumerator assumes wrap-around and the full box
      // catalog, so it is only a valid independent reference on the torus
      // in boxes mode (a block catalog deliberately enumerates fewer
      // shapes and can have a smaller MFP).
      if (topology == Topology::kTorus &&
          options.mode == CatalogOptions::Mode::kBoxes) {
        ASSERT_EQ(index.mfp(), naive_mfp(dims, occ)) << "delta " << t;
      }
    }
  }
  index.check_invariants();
}

TEST(IndexFuzz, BlueGeneTorus) {
  fuzz(Dims::bluegene_l(), Topology::kTorus, 0xB61u, 1200);
}

TEST(IndexFuzz, BlueGeneMesh) {
  fuzz(Dims::bluegene_l(), Topology::kMesh, 0x3E5Au, 1200);
}

TEST(IndexFuzz, AsymmetricSmallTorus) {
  fuzz(Dims{3, 4, 5}, Topology::kTorus, 0xCAFEu, 1000);
}

TEST(IndexFuzz, BlockCatalogTorus) {
  // The scale-up configuration in miniature: contiguous-id blocks and the
  // index's word-level bulk occupy/release path (full_width_scans off).
  CatalogOptions options;
  options.mode = CatalogOptions::Mode::kBlocks;
  options.min_block = 16;
  fuzz(Dims{16, 8, 8}, Topology::kTorus, 0xB10C5u, 900, options);
}

TEST(IndexFuzz, BlockCatalogPerNodeReferencePath) {
  // full_width_scans also routes the index through the per-node counter
  // walk — the pre-optimization reference the perf gate compares against —
  // which must stay answer-identical to the bulk word path above.
  CatalogOptions options;
  options.mode = CatalogOptions::Mode::kBlocks;
  options.min_block = 16;
  options.full_width_scans = true;
  fuzz(Dims{16, 8, 8}, Topology::kTorus, 0xB10C5u, 900, options);
}

}  // namespace
}  // namespace bgl
