// Tests for the extension features layered on the paper's model: mesh
// topology, conservative backfilling, queue-order policies, and the
// history-based predictor.
#include <gtest/gtest.h>

#include "failure/generator.hpp"
#include "predict/predictor.hpp"
#include "sim/driver.hpp"
#include "workload/synthetic.hpp"

namespace bgl {
namespace {

struct Inputs {
  Workload workload;
  FailureTrace trace;
};

Inputs inputs(int jobs, double failures_per_day, std::uint64_t seed) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = jobs;
  Workload w = generate_workload(model, seed);
  w = rescale_sizes(w, 128);
  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  FailureModel fm = FailureModel::bluegene_l(
      static_cast<std::size_t>(failures_per_day * span / 86400.0), span);
  return Inputs{std::move(w), generate_failures(fm, seed ^ 0xabcd)};
}

// --- mesh topology ---

TEST(MeshTopology, CatalogEntryCountsMatchClosedForm) {
  // Mesh: extent e admits D - e + 1 bases; per dimension sum = D(D+1)/2.
  PartitionCatalog mesh(Dims::bluegene_l(), Topology::kMesh);
  EXPECT_EQ(mesh.num_entries(), 10 * 10 * 36);
  EXPECT_EQ(mesh.topology(), Topology::kMesh);
  // All masks are contiguous boxes without wrap: base + extent <= dim.
  for (int i = 0; i < mesh.num_entries(); ++i) {
    const Box& b = mesh.entry(i).box;
    EXPECT_LE(b.base.x + b.shape.x, 4);
    EXPECT_LE(b.base.y + b.shape.y, 4);
    EXPECT_LE(b.base.z + b.shape.z, 8);
  }
}

TEST(MeshTopology, MeshEntriesAreSubsetOfTorusEntries) {
  PartitionCatalog mesh(Dims{3, 3, 3}, Topology::kMesh);
  PartitionCatalog torus(Dims{3, 3, 3}, Topology::kTorus);
  EXPECT_LT(mesh.num_entries(), torus.num_entries());
  for (int i = 0; i < mesh.num_entries(); ++i) {
    bool found = false;
    for (int j = 0; j < torus.num_entries() && !found; ++j) {
      found = mesh.entry(i).mask == torus.entry(j).mask;
    }
    EXPECT_TRUE(found) << to_string(mesh.entry(i).box);
  }
}

TEST(MeshTopology, MeshMfpNeverExceedsTorusMfp) {
  PartitionCatalog mesh(Dims::bluegene_l(), Topology::kMesh);
  PartitionCatalog torus(Dims::bluegene_l(), Topology::kTorus);
  NodeSet occ(128);
  occ.set(node_id(Dims::bluegene_l(), Coord{1, 1, 3}));
  occ.set(node_id(Dims::bluegene_l(), Coord{2, 3, 6}));
  EXPECT_LE(mesh.mfp(occ), torus.mfp(occ));
}

TEST(MeshTopology, SimulationRunsAndFragmentsMore) {
  const Inputs in = inputs(300, 0.0, 9);
  SimConfig torus_config;
  torus_config.scheduler = SchedulerKind::kKrevat;
  SimConfig mesh_config = torus_config;
  mesh_config.topology = Topology::kMesh;

  const SimResult torus_r = run_simulation(in.workload, in.trace, torus_config);
  const SimResult mesh_r = run_simulation(in.workload, in.trace, mesh_config);
  EXPECT_EQ(mesh_r.jobs_completed, in.workload.jobs.size());
  // Fewer placement options can only hurt (or equal) responsiveness.
  EXPECT_GE(mesh_r.avg_response, torus_r.avg_response * 0.99);
}

// --- conservative backfilling ---

TEST(ConservativeBackfill, NeverMoreAggressiveThanEasy) {
  const Inputs in = inputs(400, 5.0, 17);
  SimConfig easy;
  easy.scheduler = SchedulerKind::kKrevat;
  easy.sched.backfill = BackfillMode::kEasy;
  SimConfig conservative = easy;
  conservative.sched.backfill = BackfillMode::kConservative;
  SimConfig none = easy;
  none.sched.backfill = BackfillMode::kNone;

  const SimResult r_easy = run_simulation(in.workload, in.trace, easy);
  const SimResult r_cons = run_simulation(in.workload, in.trace, conservative);
  const SimResult r_none = run_simulation(in.workload, in.trace, none);

  // All complete; classical ordering: backfilling (either kind) beats none.
  EXPECT_EQ(r_cons.jobs_completed, in.workload.jobs.size());
  EXPECT_LT(r_easy.avg_bounded_slowdown, r_none.avg_bounded_slowdown);
  EXPECT_LT(r_cons.avg_bounded_slowdown, r_none.avg_bounded_slowdown);
}

TEST(ConservativeBackfill, ModeNamesAreStable) {
  EXPECT_STREQ(to_string(BackfillMode::kNone), "none");
  EXPECT_STREQ(to_string(BackfillMode::kEasy), "easy");
  EXPECT_STREQ(to_string(BackfillMode::kConservative), "conservative");
}

// --- queue orders ---

TEST(QueueOrders, SjfReducesMeanSlowdownUnderLoad) {
  const Inputs in = inputs(600, 0.0, 23);
  SimConfig fcfs;
  fcfs.scheduler = SchedulerKind::kKrevat;
  SimConfig sjf = fcfs;
  sjf.queue_order = QueueOrder::kShortestJobFirst;
  const Workload loaded = scale_load(in.workload, 1.2);
  const SimResult r_fcfs = run_simulation(loaded, in.trace, fcfs);
  const SimResult r_sjf = run_simulation(loaded, in.trace, sjf);
  EXPECT_LT(r_sjf.avg_bounded_slowdown, r_fcfs.avg_bounded_slowdown);
}

TEST(QueueOrders, AllOrdersCompleteAllJobs) {
  const Inputs in = inputs(300, 8.0, 29);
  for (const QueueOrder order :
       {QueueOrder::kFcfs, QueueOrder::kShortestJobFirst,
        QueueOrder::kSmallestJobFirst}) {
    SimConfig config;
    config.scheduler = SchedulerKind::kBalancing;
    config.alpha = 0.1;
    config.queue_order = order;
    const SimResult r = run_simulation(in.workload, in.trace, config);
    EXPECT_EQ(r.jobs_completed, in.workload.jobs.size()) << to_string(order);
    EXPECT_NEAR(r.utilization + r.unused + r.lost, 1.0, 1e-9);
  }
}

TEST(QueueOrders, NamesAreStable) {
  EXPECT_STREQ(to_string(QueueOrder::kFcfs), "fcfs");
  EXPECT_STREQ(to_string(QueueOrder::kShortestJobFirst), "sjf");
  EXPECT_STREQ(to_string(QueueOrder::kSmallestJobFirst), "smallest");
}

// --- history predictor ---

TEST(HistoryPredictor, FlagsOnlyPastFailures) {
  const FailureTrace trace({{100.0, 3}, {500.0, 7}}, 16);
  HistoryPredictor predictor(trace, /*lookback=*/200.0);
  // At t=150: node 3 failed 50 s ago -> flagged; node 7 fails later -> not.
  const NodeSet at_150 = predictor.flagged_nodes(150.0, 1000.0, 0);
  EXPECT_TRUE(at_150.test(3));
  EXPECT_FALSE(at_150.test(7));
  // At t=350: node 3's failure is outside the 200 s lookback.
  EXPECT_TRUE(predictor.flagged_nodes(350.0, 1000.0, 0).empty());
  // At t=600: node 7 recently failed.
  EXPECT_TRUE(predictor.flagged_nodes(600.0, 1000.0, 0).test(7));
}

TEST(HistoryPredictor, ParameterValidation) {
  const FailureTrace trace({{1.0, 0}}, 4);
  EXPECT_THROW(HistoryPredictor(trace, 0.0), ContractViolation);
  EXPECT_THROW(HistoryPredictor(trace, 100.0, 1.5), ContractViolation);
}

TEST(HistoryPredictor, QualityOnBurstyTraceBeatsUniformBaseline) {
  // On a bursty, node-skewed trace the repeat-offender heuristic must show
  // real precision: far above the ~failing/128 rate of random flagging.
  FailureModel model = FailureModel::bluegene_l(4000, 730.0 * 86400.0);
  const FailureTrace trace = generate_failures(model, 7);
  HistoryPredictor predictor(trace, 7.0 * 86400.0);
  const PredictionQuality q =
      evaluate_predictor(predictor, trace, 6.0 * 3600.0, 12.0 * 3600.0);
  ASSERT_GT(q.windows, 100u);
  const double base_rate =
      static_cast<double>(q.failing) / (static_cast<double>(q.windows) * 128.0);
  // Lift over uninformed flagging. At the default mild node skew (1.1) the
  // repeat-offender signal is real but not dramatic; ~1.8x measured.
  EXPECT_GT(q.precision, 1.4 * base_rate);
  EXPECT_GT(q.recall, 0.2);
}

TEST(HistoryPredictor, DrivesTheBalancingSchedulerEndToEnd) {
  const Inputs in = inputs(300, 8.0, 31);
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.predictor_model = PredictorModel::kHistory;
  config.alpha = 0.3;
  config.history_lookback = 3.0 * 86400.0;
  const SimResult r = run_simulation(in.workload, in.trace, config);
  EXPECT_EQ(r.jobs_completed, in.workload.jobs.size());
}

TEST(PredictorModels, PerfectAndNoneBracketPaper) {
  const Inputs in = inputs(400, 10.0, 37);
  auto run = [&](PredictorModel model) {
    SimConfig config;
    config.scheduler = SchedulerKind::kBalancing;
    config.predictor_model = model;
    config.alpha = 0.5;
    return run_simulation(in.workload, in.trace, config);
  };
  const SimResult none = run(PredictorModel::kNone);
  const SimResult perfect = run(PredictorModel::kPerfect);
  // The oracle cannot kill more jobs than the oblivious scheduler (same
  // inputs, full knowledge).
  EXPECT_LE(perfect.job_kills, none.job_kills);
}

TEST(PredictorModels, NamesAreStable) {
  EXPECT_STREQ(to_string(PredictorModel::kPaper), "paper");
  EXPECT_STREQ(to_string(PredictorModel::kHistory), "history");
  EXPECT_STREQ(to_string(PredictorModel::kPerfect), "perfect");
  EXPECT_STREQ(to_string(PredictorModel::kNone), "none");
}

}  // namespace
}  // namespace bgl
