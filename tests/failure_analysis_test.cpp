#include "failure/analysis.hpp"

#include <gtest/gtest.h>

#include "failure/generator.hpp"

namespace bgl {
namespace {

TEST(FailureAnalysis, EmptyTrace) {
  const FailureSummary s = summarize_failures(FailureTrace({}, 16));
  EXPECT_EQ(s.events, 0u);
  EXPECT_DOUBLE_EQ(s.rate_per_day, 0.0);
  EXPECT_EQ(s.distinct_nodes, 0);
}

TEST(FailureAnalysis, HandBuiltStatistics) {
  // Two bursts of 3 and 2 events plus one isolated event.
  const FailureTrace trace(
      {
          {0.0, 0}, {10.0, 1}, {20.0, 0},        // burst A
          {10000.0, 2}, {10060.0, 2},            // burst B
          {50000.0, 3},                          // isolated
      },
      8);
  const FailureSummary s = summarize_failures(trace, /*burst_window=*/300.0);
  EXPECT_EQ(s.events, 6u);
  EXPECT_EQ(s.distinct_nodes, 4);
  // Gaps: 10, 10, 9980, 60, 39940 -> 3 of 5 within 300 s.
  EXPECT_NEAR(s.clustered_fraction, 3.0 / 5.0, 1e-12);
  EXPECT_GT(s.gap_cv, 1.0);
}

TEST(FailureAnalysis, EpisodeSizes) {
  const FailureTrace trace(
      {
          {0.0, 0}, {10.0, 1}, {20.0, 0},
          {10000.0, 2}, {10060.0, 2},
          {50000.0, 3},
      },
      8);
  EXPECT_EQ(episode_sizes(trace, 300.0), (std::vector<std::size_t>{3, 2, 1}));
  EXPECT_TRUE(episode_sizes(FailureTrace({}, 4)).empty());
  // A window of 0 splits everything (all gaps are > 0): 6 singletons.
  EXPECT_EQ(episode_sizes(trace, 0.0).size(), 6u);
}

TEST(FailureAnalysis, EpisodeSizesSumToEventCount) {
  FailureModel model = FailureModel::bluegene_l(1500, 100.0 * 86400.0);
  const FailureTrace trace = generate_failures(model, 3);
  std::size_t total = 0;
  for (const std::size_t s : episode_sizes(trace)) total += s;
  EXPECT_EQ(total, trace.size());
}

TEST(FailureAnalysis, GeneratedTraceIsSkewedAndBursty) {
  FailureModel model = FailureModel::bluegene_l(4000, 730.0 * 86400.0);
  const FailureSummary s = summarize_failures(generate_failures(model, 7));
  // Uniform flagging would give the top decile ~10% of events; the skewed
  // generator concentrates far more.
  EXPECT_GT(s.top_decile_share, 0.2);
  EXPECT_GT(s.gap_cv, 1.5);
  EXPECT_GT(s.clustered_fraction, 0.1);
}

TEST(FailureAnalysis, DescribeMentionsKeyNumbers) {
  FailureModel model = FailureModel::bluegene_l(500, 50.0 * 86400.0);
  const std::string text = describe_failures(generate_failures(model, 1));
  EXPECT_NE(text.find("500 events"), std::string::npos);
  EXPECT_NE(text.find("/day"), std::string::npos);
  EXPECT_NE(text.find("gap CV"), std::string::npos);
}

}  // namespace
}  // namespace bgl
