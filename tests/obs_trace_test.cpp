// Tests of the JSONL trace sink (src/obs/trace.hpp) and its wiring through
// the scheduler and the simulation driver.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "sched/scheduler.hpp"
#include "sim/driver.hpp"

namespace bgl {
namespace {

using obs::CounterRegistry;
using obs::TraceSink;

// --- tiny JSONL probes (the schema is flat, one object per line) ---

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Raw text of `"key":<value>` in a one-line JSON object, or nullopt.
std::optional<std::string> raw_field(const std::string& line,
                                     const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  if (line[begin] == '"') {  // string value: scan to the unescaped close quote
    ++end;
    while (end < line.size() && (line[end] != '"' || line[end - 1] == '\\')) ++end;
    ++end;
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

std::optional<double> number_field(const std::string& line, const std::string& key) {
  const auto raw = raw_field(line, key);
  if (!raw) return std::nullopt;
  return std::stod(*raw);
}

/// String field with the surrounding quotes stripped (escapes left as-is).
std::optional<std::string> string_field(const std::string& line,
                                        const std::string& key) {
  const auto raw = raw_field(line, key);
  if (!raw || raw->size() < 2 || raw->front() != '"') return std::nullopt;
  return raw->substr(1, raw->size() - 2);
}

Workload make_workload(std::vector<Job> jobs) {
  Workload w;
  w.name = "scripted";
  w.machine_nodes = 128;
  w.jobs = std::move(jobs);
  normalize(w);
  return w;
}

/// A run with enough structure to exercise every core event type: queued
/// jobs, a failure that kills a running job, and a restart.
SimResult traced_run(std::ostream* trace_stream, CounterRegistry* counters) {
  Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 128},   // fills the machine
      Job{2, 10.0, 50.0, 60.0, 64},     // queues behind it
      Job{3, 20.0, 50.0, 60.0, 64},     // queues, starts in parallel with 2
  });
  // Node 0 fails at t = 40 while job 1 holds the whole machine.
  const FailureTrace trace({FailureEvent{40.0, 0}}, 128);
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.5;
  std::unique_ptr<TraceSink> sink;
  if (trace_stream != nullptr) {
    sink = std::make_unique<TraceSink>(*trace_stream);
    config.obs.trace = sink.get();
  }
  config.obs.counters = counters;
  return run_simulation(w, trace, config);
}

// --- serialization ---

TEST(TraceSink, EscapesStringsPerJson) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.event("note", 1.0)
      .field("text", "say \"hi\"\\\n\tdone")
      .field("ctrl", std::string(1, '\x01'));
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(*raw_field(lines[0], "text"), "\"say \\\"hi\\\"\\\\\\n\\tdone\"");
  EXPECT_EQ(*raw_field(lines[0], "ctrl"), "\"\\u0001\"");
}

TEST(TraceSink, NumbersRoundTrip) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.event("n", 86423.5)
      .field("i", std::int64_t{-7})
      .field("u", std::uint64_t{18446744073709551615ull})
      .field("d", 0.001953125)  // exact binary fraction
      .field("b", true);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_DOUBLE_EQ(*number_field(lines[0], "t"), 86423.5);
  EXPECT_EQ(*raw_field(lines[0], "i"), "-7");
  EXPECT_EQ(*raw_field(lines[0], "u"), "18446744073709551615");
  EXPECT_DOUBLE_EQ(*number_field(lines[0], "d"), 0.001953125);
  EXPECT_EQ(*raw_field(lines[0], "b"), "true");
}

TEST(TraceSink, EveryLineCarriesTypeSimTimeAndWallTime) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.event("a", 1.5);
  sink.event("b", 2.5).field("x", 1);
  for (const auto& line : lines_of(out.str())) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_TRUE(raw_field(line, "type").has_value());
    EXPECT_TRUE(number_field(line, "t").has_value());
    EXPECT_GE(*number_field(line, "wall_us"), 0.0);
  }
  EXPECT_EQ(sink.events_written(), 2u);
  EXPECT_DOUBLE_EQ(sink.max_sim_time(), 2.5);
}

// --- driver integration ---

TEST(TraceObs, SimulationEmitsTheDocumentedEventTypes) {
  std::ostringstream out;
  const SimResult r = traced_run(&out, nullptr);
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_EQ(r.job_kills, 1u);

  std::set<std::string> types;
  for (const auto& line : lines_of(out.str())) {
    types.insert(*string_field(line, "type"));
  }
  const std::set<std::string> expected = {
      "sim_begin", "job_submit", "predictor_query", "sched_decision",
      "job_start", "node_failure", "job_kill", "job_finish", "sim_end"};
  for (const auto& t : expected) {
    EXPECT_TRUE(types.count(t)) << "missing event type: " << t;
  }
  EXPECT_GE(types.size(), 6u);
}

TEST(TraceObs, SimTimeIsMonotonicAcrossTheTrace) {
  std::ostringstream out;
  traced_run(&out, nullptr);
  const auto lines = lines_of(out.str());
  ASSERT_GT(lines.size(), 10u);
  double last = -1e300;
  for (const auto& line : lines) {
    const double t = *number_field(line, "t");
    EXPECT_GE(t, last) << "sim time went backwards at: " << line;
    last = t;
  }
}

TEST(TraceObs, SchedDecisionCarriesTheLossDecomposition) {
  std::ostringstream out;
  traced_run(&out, nullptr);
  std::size_t decisions = 0;
  for (const auto& line : lines_of(out.str())) {
    if (*string_field(line, "type") != "sched_decision") continue;
    ++decisions;
    ASSERT_TRUE(number_field(line, "l_mfp").has_value()) << line;
    ASSERT_TRUE(number_field(line, "l_pf").has_value()) << line;
    ASSERT_TRUE(number_field(line, "e_loss").has_value()) << line;
    ASSERT_TRUE(number_field(line, "candidates").has_value()) << line;
    EXPECT_GE(*number_field(line, "candidates"), 1.0);
    EXPECT_NEAR(*number_field(line, "e_loss"),
                *number_field(line, "l_mfp") + *number_field(line, "l_pf"),
                1e-6);
  }
  // Every start is audited: 3 jobs, one killed and restarted once.
  EXPECT_EQ(decisions, 4u);
}

TEST(TraceObs, TracingDoesNotPerturbTheSimulation) {
  std::ostringstream out;
  const SimResult traced = traced_run(&out, nullptr);
  const SimResult plain = traced_run(nullptr, nullptr);
  EXPECT_EQ(traced.jobs_completed, plain.jobs_completed);
  EXPECT_EQ(traced.job_kills, plain.job_kills);
  EXPECT_DOUBLE_EQ(traced.span, plain.span);
  EXPECT_DOUBLE_EQ(traced.avg_wait, plain.avg_wait);
  EXPECT_DOUBLE_EQ(traced.utilization, plain.utilization);
}

TEST(TraceObs, TraceIsDeterministicModuloWallTime) {
  std::ostringstream a, b;
  traced_run(&a, nullptr);
  traced_run(&b, nullptr);
  auto strip_wall = [](const std::string& text) {
    std::string out;
    for (const auto& line : lines_of(text)) {
      const auto pos = line.find(",\"wall_us\":");
      const auto end = line.find_first_of(",}", pos + 1);
      out += line.substr(0, pos) + line.substr(end) + '\n';
    }
    return out;
  };
  EXPECT_EQ(strip_wall(a.str()), strip_wall(b.str()));
}

TEST(TraceObs, CountersMatchTraceAndResult) {
  std::ostringstream out;
  CounterRegistry counters;
  const SimResult r = traced_run(&out, &counters);
  EXPECT_EQ(counters.value(obs::Counter::kDriverKills), r.job_kills);
  EXPECT_EQ(counters.value(obs::Counter::kDriverFailures), r.failures_total);
  EXPECT_EQ(counters.value(obs::Counter::kSchedStarts), 4u);  // 3 jobs + 1 restart
  EXPECT_EQ(counters.value(obs::Counter::kPredictorQueries), 4u);
  EXPECT_GT(counters.value(obs::Counter::kSchedInvocations), 0u);
  EXPECT_GT(counters.value(obs::Counter::kMfpEvaluations), 0u);
  EXPECT_GT(counters.value(obs::Counter::kPartitionsScanned), 0u);
}

// --- disabled-observer contract ---

TEST(TraceObs, DisabledObserverProducesNoAuditRecords) {
  // The engine must not allocate decision-audit vectors when no trace sink
  // is attached (the zero-cost-when-disabled contract).
  const PartitionCatalog catalog(Dims::bluegene_l());
  const NullPredictor predictor(catalog.num_nodes());
  const auto scheduler = make_krevat_scheduler(catalog, predictor);

  const std::vector<WaitingJob> queue = {WaitingJob{0, 64, 64, 100.0}};
  const NodeSet occupied(catalog.num_nodes());
  const SchedulingDecision decision =
      scheduler->schedule(0.0, queue, {}, occupied);
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_TRUE(decision.placements.empty());
  EXPECT_TRUE(decision.predictor_queries.empty());
  EXPECT_EQ(decision.placements.capacity(), 0u);  // never even reserved
  EXPECT_EQ(decision.predictor_queries.capacity(), 0u);
}

TEST(TraceObs, TracingObserverAuditsEveryStart) {
  std::ostringstream out;
  TraceSink sink(out);
  const PartitionCatalog catalog(Dims::bluegene_l());
  const NullPredictor predictor(catalog.num_nodes());
  const auto scheduler = make_krevat_scheduler(catalog, predictor);
  obs::Observer observer;
  observer.trace = &sink;
  scheduler->set_observer(observer);

  const std::vector<WaitingJob> queue = {WaitingJob{0, 64, 64, 100.0},
                                         WaitingJob{1, 64, 64, 100.0}};
  const NodeSet occupied(catalog.num_nodes());
  const SchedulingDecision decision =
      scheduler->schedule(0.0, queue, {}, occupied);
  ASSERT_EQ(decision.starts.size(), 2u);
  ASSERT_EQ(decision.placements.size(), 2u);
  EXPECT_EQ(decision.predictor_queries.size(), 2u);
  for (std::size_t i = 0; i < decision.starts.size(); ++i) {
    EXPECT_EQ(decision.placements[i].id, decision.starts[i].id);
    EXPECT_GE(decision.placements[i].candidates, 1);
  }
}

TEST(TraceObs, DisabledTraceWritesNothing) {
  // A run with a default (empty) Observer must leave an attached-but-unused
  // stream untouched; this is trivially true because no sink exists, so the
  // meaningful assertion is that the default config's observer is disabled.
  SimConfig config;
  EXPECT_FALSE(config.obs.enabled());
  std::ostringstream out;
  {
    TraceSink sink(out);  // constructed but never handed to a simulation
    EXPECT_EQ(sink.events_written(), 0u);
  }
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace bgl
