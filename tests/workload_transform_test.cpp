#include "workload/transform.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/synthetic.hpp"

namespace bgl {
namespace {

Workload sample() {
  Workload w;
  w.name = "sample";
  w.machine_nodes = 128;
  w.jobs = {
      Job{1, 0.0, 100.0, 200.0, 8},
      Job{2, 50.0, 300.0, 300.0, 64},
      Job{3, 120.0, 30.0, 600.0, 1},
      Job{4, 400.0, 1000.0, 1500.0, 32},
  };
  normalize(w);
  return w;
}

TEST(Transform, FilterJobsKeepsMatchingAndRebases) {
  const Workload w = sample();
  const Workload big = filter_jobs(w, [](const Job& j) { return j.size >= 32; });
  ASSERT_EQ(big.jobs.size(), 2u);
  EXPECT_EQ(big.jobs[0].id, 2u);
  EXPECT_DOUBLE_EQ(big.jobs[0].arrival, 0.0);  // re-based from 50
  EXPECT_DOUBLE_EQ(big.jobs[1].arrival, 350.0);
}

TEST(Transform, FilterAllKeepsEverything) {
  const Workload w = sample();
  const Workload all = filter_jobs(w, [](const Job&) { return true; });
  EXPECT_EQ(all.jobs.size(), w.jobs.size());
}

TEST(Transform, SliceTimeHalfOpen) {
  const Workload w = sample();
  const Workload mid = slice_time(w, 50.0, 400.0);
  ASSERT_EQ(mid.jobs.size(), 2u);  // jobs 2 and 3; job 4 at 400 excluded
  EXPECT_EQ(mid.jobs[0].id, 2u);
  EXPECT_EQ(mid.jobs[1].id, 3u);
}

TEST(Transform, SliceValidatesInterval) {
  EXPECT_THROW(slice_time(sample(), 100.0, 50.0), ContractViolation);
}

TEST(Transform, HeadJobs) {
  const Workload w = sample();
  const Workload first2 = head_jobs(w, 2);
  ASSERT_EQ(first2.jobs.size(), 2u);
  EXPECT_EQ(first2.jobs[0].id, 1u);
  EXPECT_EQ(first2.jobs[1].id, 2u);
  EXPECT_EQ(head_jobs(w, 100).jobs.size(), 4u);
}

TEST(Transform, MergeInterleavesAndRenumbers) {
  Workload a = sample();
  Workload b;
  b.name = "other";
  b.machine_nodes = 256;
  b.jobs = {Job{1, 25.0, 10.0, 10.0, 200}};
  normalize(b);

  const Workload merged = merge_workloads({a, b});
  ASSERT_EQ(merged.jobs.size(), 5u);
  EXPECT_EQ(merged.machine_nodes, 256);
  // Renumbered 1..5, arrival-sorted; the b-job lands second.
  for (std::size_t i = 0; i < merged.jobs.size(); ++i) {
    EXPECT_EQ(merged.jobs[i].id, i + 1);
  }
  EXPECT_EQ(merged.jobs[1].size, 200);
  EXPECT_DOUBLE_EQ(merged.jobs[1].arrival, 25.0);
}

TEST(Transform, MergeRequiresInput) {
  EXPECT_THROW(merge_workloads({}), ContractViolation);
}

TEST(Transform, CapEstimates) {
  const Workload w = sample();
  const Workload capped = cap_estimates(w, 1.5);
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    EXPECT_LE(capped.jobs[i].estimate, w.jobs[i].runtime * 1.5 + 1e-12);
    EXPECT_GE(capped.jobs[i].estimate, capped.jobs[i].runtime);
  }
  // Job 3 had estimate 600 = 20x runtime: now 45.
  EXPECT_DOUBLE_EQ(capped.jobs[2].estimate, 45.0);
  EXPECT_THROW(cap_estimates(w, 0.5), ContractViolation);
}

TEST(Transform, ExactEstimates) {
  const Workload w = exact_estimates(sample());
  for (const Job& j : w.jobs) EXPECT_DOUBLE_EQ(j.estimate, j.runtime);
}

TEST(Transform, ThinKeepsApproximateFractionAndTiming) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 4000;
  const Workload w = generate_workload(model, 5);
  const Workload thin = thin_workload(w, 0.5, 9);
  const double fraction =
      static_cast<double>(thin.jobs.size()) / static_cast<double>(w.jobs.size());
  EXPECT_NEAR(fraction, 0.5, 0.04);
  // Arrival times preserved (not re-based): load really halves.
  EXPECT_GT(thin.jobs.front().arrival, 0.0);
  // Deterministic.
  EXPECT_EQ(thin_workload(w, 0.5, 9).jobs.size(), thin.jobs.size());
  EXPECT_THROW(thin_workload(w, 1.5, 9), ContractViolation);
}

TEST(Transform, ThinExtremes) {
  const Workload w = sample();
  EXPECT_TRUE(thin_workload(w, 0.0, 1).jobs.empty());
  EXPECT_EQ(thin_workload(w, 1.0, 1).jobs.size(), w.jobs.size());
}

}  // namespace
}  // namespace bgl
