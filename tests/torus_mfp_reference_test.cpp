// Oracle test for the MFP engine: the catalog's size-descending scan must
// agree with an independent brute-force maximal-free-box search on random
// occupancies, for torus and mesh topologies and several machine sizes.
#include <gtest/gtest.h>

#include "torus/catalog.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

/// Brute force: largest free box by trying every (shape, base), honouring
/// the topology's base rules, checking node by node.
int reference_mfp(const Dims& dims, Topology topology, const NodeSet& occ) {
  int best = 0;
  for (int sx = 1; sx <= dims.x; ++sx) {
    for (int sy = 1; sy <= dims.y; ++sy) {
      for (int sz = 1; sz <= dims.z; ++sz) {
        const int volume = sx * sy * sz;
        if (volume <= best) continue;
        const bool mesh = topology == Topology::kMesh;
        const int bx_max = mesh ? dims.x - sx + 1 : dims.x;
        const int by_max = mesh ? dims.y - sy + 1 : dims.y;
        const int bz_max = mesh ? dims.z - sz + 1 : dims.z;
        bool found = false;
        for (int bx = 0; bx < bx_max && !found; ++bx) {
          for (int by = 0; by < by_max && !found; ++by) {
            for (int bz = 0; bz < bz_max && !found; ++bz) {
              bool free = true;
              for (int dx = 0; dx < sx && free; ++dx) {
                for (int dy = 0; dy < sy && free; ++dy) {
                  for (int dz = 0; dz < sz && free; ++dz) {
                    const Coord c = wrap(dims, bx + dx, by + dy, bz + dz);
                    if (occ.test(node_id(dims, c))) free = false;
                  }
                }
              }
              found = free;
            }
          }
        }
        if (found) best = volume;
      }
    }
  }
  return best;
}

struct MfpCase {
  Dims dims;
  Topology topology;
  double density;
  std::uint64_t seed;
};

class MfpOracle : public ::testing::TestWithParam<MfpCase> {};

TEST_P(MfpOracle, CatalogMatchesBruteForce) {
  const MfpCase c = GetParam();
  PartitionCatalog catalog(c.dims, c.topology);
  Rng rng(c.seed);
  for (int trial = 0; trial < 25; ++trial) {
    NodeSet occ(c.dims.volume());
    for (int i = 0; i < c.dims.volume(); ++i) {
      if (rng.bernoulli(c.density)) occ.set(i);
    }
    EXPECT_EQ(catalog.mfp(occ), reference_mfp(c.dims, c.topology, occ))
        << "density " << c.density << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TorusAndMesh, MfpOracle,
    ::testing::Values(MfpCase{Dims{4, 4, 8}, Topology::kTorus, 0.1, 1},
                      MfpCase{Dims{4, 4, 8}, Topology::kTorus, 0.4, 2},
                      MfpCase{Dims{4, 4, 8}, Topology::kTorus, 0.8, 3},
                      MfpCase{Dims{4, 4, 8}, Topology::kMesh, 0.2, 4},
                      MfpCase{Dims{4, 4, 8}, Topology::kMesh, 0.6, 5},
                      MfpCase{Dims{3, 3, 3}, Topology::kTorus, 0.3, 6},
                      MfpCase{Dims{3, 3, 3}, Topology::kMesh, 0.3, 7},
                      MfpCase{Dims{2, 3, 5}, Topology::kTorus, 0.5, 8},
                      MfpCase{Dims{2, 3, 5}, Topology::kMesh, 0.5, 9},
                      MfpCase{Dims{1, 1, 8}, Topology::kTorus, 0.4, 10}));

TEST(MfpOracle, EmptyAndFullMachines) {
  for (const Topology topology : {Topology::kTorus, Topology::kMesh}) {
    PartitionCatalog catalog(Dims::bluegene_l(), topology);
    NodeSet occ(128);
    EXPECT_EQ(catalog.mfp(occ), 128);
    occ.fill();
    EXPECT_EQ(catalog.mfp(occ), 0);
  }
}

}  // namespace
}  // namespace bgl
