#include "torus/index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "torus/coords.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

class IndexTest : public ::testing::Test {
 protected:
  static const PartitionCatalog& catalog() {
    static PartitionCatalog instance(kBgl);
    return instance;
  }
};

TEST_F(IndexTest, EmptyOccupancyEverythingFree) {
  FreePartitionIndex index(catalog());
  EXPECT_EQ(index.mfp(), 128);
  EXPECT_EQ(index.first_free_index(), 0);
  for (int s = 1; s <= 128; ++s) {
    const auto [first, last] = catalog().size_range(s);
    EXPECT_EQ(index.free_count_of_size(s), last - first);
  }
  for (int e = 0; e < catalog().num_entries(); ++e) {
    EXPECT_TRUE(index.entry_free(e));
    EXPECT_EQ(index.blocked_count(e), 0);
  }
  index.check_invariants();
}

TEST_F(IndexTest, FullOccupancyNothingFree) {
  FreePartitionIndex index(catalog());
  NodeSet all(128);
  all.fill();
  index.occupy(all);
  EXPECT_EQ(index.mfp(), 0);
  EXPECT_EQ(index.first_free_index(), -1);
  for (int s = 1; s <= 128; ++s) {
    EXPECT_FALSE(index.has_free_of_size(s));
  }
  index.check_invariants();
}

TEST_F(IndexTest, SingleBusyNodeMatchesCatalog) {
  FreePartitionIndex index(catalog());
  index.occupy_node(node_id(kBgl, Coord{0, 0, 0}));
  // Largest free box avoiding one node: 4x4x7 = 112 (z-slab excluded).
  EXPECT_EQ(index.mfp(), 112);
  index.release_node(node_id(kBgl, Coord{0, 0, 0}));
  EXPECT_EQ(index.mfp(), 128);
  index.check_invariants();
}

TEST_F(IndexTest, OccupyReleaseRoundtripRestoresEverything) {
  FreePartitionIndex index(catalog());
  const auto [first, last] = catalog().size_range(32);
  ASSERT_LT(first, last);
  const NodeSet& mask = catalog().entry(first).mask;
  index.occupy(mask);
  EXPECT_FALSE(index.entry_free(first));
  EXPECT_EQ(index.blocked_count(first), 32);
  EXPECT_LT(index.mfp(), 128);
  index.check_invariants();
  index.release(mask);
  EXPECT_TRUE(index.entry_free(first));
  EXPECT_EQ(index.mfp(), 128);
  EXPECT_TRUE(index.occupied().empty());
  index.check_invariants();
}

TEST_F(IndexTest, OccupyHasSetSemantics) {
  // Occupying a node twice (overlapping layers: a partition mask plus a
  // down-node overlay) must count it once; releasing the partition while
  // the node stays down is done by subtracting the overlay from the mask.
  FreePartitionIndex index(catalog());
  const auto [first, last] = catalog().size_range(64);
  ASSERT_LT(first, last);
  const NodeSet& mask = catalog().entry(first).mask;
  const int down = mask.to_ids().front();
  index.occupy(mask);
  index.occupy_node(down);  // no-op: already occupied via the partition
  NodeSet expected = mask;
  EXPECT_EQ(index.occupied(), expected);

  NodeSet partial = mask;
  NodeSet overlay(128);
  overlay.set(down);
  partial.subtract(overlay);
  index.release(partial);  // partition gone, node still down
  EXPECT_EQ(index.occupied(), overlay);
  EXPECT_EQ(index.mfp(), 112);
  index.check_invariants();
  index.release_node(down);
  EXPECT_EQ(index.mfp(), 128);
  index.check_invariants();
}

TEST_F(IndexTest, ResetToOccupancyMatchesIncrementalPath) {
  Rng rng(7);
  NodeSet occ(128);
  for (int i = 0; i < 128; ++i) {
    if (rng.bernoulli(0.35)) occ.set(i);
  }
  FreePartitionIndex incremental(catalog());
  incremental.occupy(occ);
  FreePartitionIndex rebuilt(catalog());
  rebuilt.reset(occ);
  EXPECT_EQ(incremental.occupied(), rebuilt.occupied());
  EXPECT_EQ(incremental.mfp(), rebuilt.mfp());
  for (int e = 0; e < catalog().num_entries(); ++e) {
    EXPECT_EQ(incremental.blocked_count(e), rebuilt.blocked_count(e));
  }
  rebuilt.reset();
  EXPECT_EQ(rebuilt.mfp(), 128);
}

TEST_F(IndexTest, CopyIsIndependent) {
  FreePartitionIndex a(catalog());
  const auto [first, last] = catalog().size_range(128);
  a.occupy(catalog().entry(first).mask);
  FreePartitionIndex b = a;
  EXPECT_EQ(b.mfp(), 0);
  b.release(catalog().entry(first).mask);
  EXPECT_EQ(b.mfp(), 128);
  EXPECT_EQ(a.mfp(), 0);  // the copy's release must not leak back
  a.check_invariants();
  b.check_invariants();

  // Assignment into a used index reuses its buffers and must fully
  // overwrite the previous state (the scheduler's per-pass scratch path).
  b = a;
  EXPECT_EQ(b.mfp(), 0);
  b.check_invariants();
}

TEST_F(IndexTest, QueriesMatchCatalogScansUnderRandomOccupancy) {
  Rng rng(42);
  NodeSet occ(128);
  for (int i = 0; i < 128; ++i) {
    if (rng.bernoulli(0.45)) occ.set(i);
  }
  FreePartitionIndex index(catalog());
  index.occupy(occ);

  EXPECT_EQ(index.mfp(), catalog().mfp(occ));
  EXPECT_EQ(index.first_free_index(), catalog().first_free_index(occ));
  for (const int s : {1, 2, 8, 16, 32, 64, 128}) {
    std::vector<int> from_index, from_scan;
    index.free_entries_of_size(s, from_index);
    catalog().free_entries_of_size(occ, s, from_scan);
    EXPECT_EQ(from_index, from_scan) << "size " << s;  // same order, too
  }
}

TEST_F(IndexTest, MfpWithMatchesMaterializedUnion) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    NodeSet occ(128);
    NodeSet extra(128);
    for (int i = 0; i < 128; ++i) {
      if (rng.bernoulli(0.3)) occ.set(i);
      if (rng.bernoulli(0.1)) extra.set(i);
    }
    FreePartitionIndex index(catalog());
    index.occupy(occ);
    NodeSet unioned = occ;
    unioned |= extra;
    const int hint = index.first_free_index();
    EXPECT_EQ(index.mfp_with(extra, hint < 0 ? 0 : hint),
              catalog().mfp(unioned));
    EXPECT_EQ(index.first_free_index_with(extra),
              catalog().first_free_index_with(occ, extra));
  }
}

TEST(IndexGeneric, SmallTorusAndMesh) {
  for (const Topology topo : {Topology::kTorus, Topology::kMesh}) {
    PartitionCatalog catalog(Dims{2, 2, 2}, topo);
    FreePartitionIndex index(catalog);
    EXPECT_EQ(index.mfp(), 8);
    index.occupy_node(0);
    EXPECT_EQ(index.mfp(), catalog.mfp(index.occupied()));
    index.check_invariants();
  }
}

}  // namespace
}  // namespace bgl
