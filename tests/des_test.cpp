#include "des/engine.hpp"
#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(Event{5.0, EventType::kArrival, 1, 0, 0});
  q.push(Event{1.0, EventType::kArrival, 2, 0, 0});
  q.push(Event{3.0, EventType::kArrival, 3, 0, 0});
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_EQ(q.pop().id, 3u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SemanticTieBreakAtEqualTime) {
  EventQueue q;
  q.push(Event{2.0, EventType::kArrival, 1, 0, 0});
  q.push(Event{2.0, EventType::kFailure, 2, 0, 0});
  q.push(Event{2.0, EventType::kFinish, 3, 0, 0});
  q.push(Event{2.0, EventType::kCheckpoint, 4, 0, 0});
  EXPECT_EQ(q.pop().type, EventType::kFinish);
  EXPECT_EQ(q.pop().type, EventType::kFailure);
  EXPECT_EQ(q.pop().type, EventType::kArrival);
  EXPECT_EQ(q.pop().type, EventType::kCheckpoint);
}

TEST(EventQueue, FifoWithinSameTimeAndType) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 10; ++i) {
    q.push(Event{1.0, EventType::kArrival, i, 0, 0});
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop().id, i);
  }
}

TEST(EventQueue, NowTracksLastPop) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.push(Event{4.5, EventType::kArrival, 1, 0, 0});
  q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 4.5);
}

TEST(EventQueue, RejectsEventInThePast) {
  EventQueue q;
  q.push(Event{10.0, EventType::kArrival, 1, 0, 0});
  q.pop();
  EXPECT_THROW(q.push(Event{9.0, EventType::kArrival, 2, 0, 0}), ContractViolation);
  EXPECT_NO_THROW(q.push(Event{10.0, EventType::kArrival, 3, 0, 0}));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), ContractViolation);
  EXPECT_THROW((void)q.top(), ContractViolation);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(Event{3.0, EventType::kArrival, 1, 0, 0});
  q.pop();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_NO_THROW(q.push(Event{1.0, EventType::kArrival, 2, 0, 0}));
}

TEST(Engine, DispatchesToRegisteredHandlers) {
  Engine engine;
  std::vector<std::uint64_t> arrivals;
  engine.on(EventType::kArrival, [&](Engine&, const Event& e) {
    arrivals.push_back(e.id);
  });
  engine.schedule(1.0, EventType::kArrival, 10);
  engine.schedule(2.0, EventType::kArrival, 20);
  engine.schedule(1.5, EventType::kFinish, 99);  // no handler: dropped
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(arrivals, (std::vector<std::uint64_t>{10, 20}));
}

TEST(Engine, HandlersCanScheduleMoreEvents) {
  Engine engine;
  int count = 0;
  engine.on(EventType::kCustom, [&](Engine& e, const Event& ev) {
    ++count;
    if (ev.id > 0) e.schedule(e.now() + 1.0, EventType::kCustom, ev.id - 1);
  });
  engine.schedule(0.0, EventType::kCustom, 4);
  engine.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(Engine, StopHaltsDispatch) {
  Engine engine;
  int count = 0;
  engine.on(EventType::kCustom, [&](Engine& e, const Event&) {
    if (++count == 2) e.stop();
  });
  for (int i = 0; i < 5; ++i) engine.schedule(i, EventType::kCustom, 0);
  engine.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, MaxEventsBound) {
  Engine engine;
  int count = 0;
  engine.on(EventType::kCustom, [&](Engine&, const Event&) { ++count; });
  for (int i = 0; i < 10; ++i) engine.schedule(i, EventType::kCustom, 0);
  EXPECT_EQ(engine.run(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(EventQueueKindNames, AllNamed) {
  EXPECT_STREQ(to_string(EventQueueKind::kCalendar), "calendar");
  EXPECT_STREQ(to_string(EventQueueKind::kHeap), "heap");
}

TEST(EventQueue, HeapReferenceKindSelectable) {
  EventQueue q(EventQueueKind::kHeap);
  EXPECT_EQ(q.kind(), EventQueueKind::kHeap);
  q.push(Event{2.0, EventType::kArrival, 1, 0, 0});
  q.push(Event{1.0, EventType::kFinish, 2, 0, 0});
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_EQ(q.pop().id, 1u);
}

// Differential fuzz: the calendar queue must pop the exact event sequence of
// the binary-heap reference — time, semantic type, and FIFO seq included —
// across randomized push/pop interleavings with duplicate timestamps,
// zero-delay events, bursts (bucket-table growth), deep drains (shrink), and
// far-future jumps (the direct-search fallback).
TEST(EventQueueFuzz, CalendarMatchesHeapDifferential) {
  constexpr int kOpsPerSeed = 5000;
  for (const std::uint64_t seed : {11ULL, 23ULL, 47ULL}) {
    Rng rng(seed);
    EventQueue cal(EventQueueKind::kCalendar);
    EventQueue heap(EventQueueKind::kHeap);
    std::uint64_t next_id = 0;
    std::size_t pending = 0;

    auto push_one = [&](SimTime t) {
      const auto type = static_cast<EventType>(rng.uniform_int(0, 4));
      const Event e{t, type, next_id, next_id * 3 + 1, 0};
      cal.push(e);
      heap.push(e);
      ++next_id;
      ++pending;
    };
    auto pop_both = [&] {
      const Event a = cal.top();
      const Event b = heap.top();
      EXPECT_DOUBLE_EQ(a.time, b.time);
      const Event ca = cal.pop();
      const Event hb = heap.pop();
      ASSERT_DOUBLE_EQ(ca.time, hb.time);
      ASSERT_EQ(ca.type, hb.type);
      ASSERT_EQ(ca.id, hb.id);
      ASSERT_EQ(ca.tag, hb.tag);
      ASSERT_EQ(ca.seq, hb.seq);  // FIFO seq stability
      --pending;
    };

    for (int op = 0; op < kOpsPerSeed; ++op) {
      if (pending == 0 || rng.bernoulli(0.55)) {
        const double now = cal.now();
        const double r = rng.uniform();
        SimTime t;
        if (r < 0.25) {
          t = now;  // zero-delay event
        } else if (r < 0.90) {
          // Coarse grid: duplicate timestamps are common by construction.
          t = now + 0.25 * static_cast<double>(rng.uniform_int(0, 40));
        } else {
          t = now + rng.uniform(1e3, 1e6);  // far-future jump
        }
        push_one(t);
        if (rng.bernoulli(0.05)) {
          for (int burst = 0; burst < 64; ++burst) push_one(t);
        }
      } else {
        pop_both();
        // Occasionally drain deep to force the bucket table to shrink.
        if (rng.bernoulli(0.03)) {
          while (pending > 1) pop_both();
        }
      }
    }
    while (pending > 0) pop_both();
    EXPECT_TRUE(cal.empty());
    EXPECT_TRUE(heap.empty());
  }
}

TEST(EventTypeNames, AllNamed) {
  EXPECT_STREQ(to_string(EventType::kArrival), "arrival");
  EXPECT_STREQ(to_string(EventType::kFinish), "finish");
  EXPECT_STREQ(to_string(EventType::kFailure), "failure");
  EXPECT_STREQ(to_string(EventType::kCheckpoint), "checkpoint");
  EXPECT_STREQ(to_string(EventType::kCustom), "custom");
}

}  // namespace
}  // namespace bgl
