// Unit tests of the JSONL trace reader (src/obs/reader.hpp): the scanner,
// the generic TraceRecord accessors, and the typed event decoders.
#include "obs/reader.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace bgl::obs {
namespace {

TraceRecord parse_one(const std::string& line) {
  std::istringstream in(line);
  TraceReader reader(in);
  TraceRecord rec;
  EXPECT_TRUE(reader.next(rec));
  return rec;
}

TEST(TraceReader, ReadsBackWhatTheSinkWrites) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.event("job_start", 12.5)
      .field("job", std::int64_t{7})
      .field("entry", 42)
      .field("wait_so_far", 2.5)
      .field("backfill", true)
      .field("policy", "balancing");
  sink.event("job_finish", 20.0).field("job", std::int64_t{7});

  std::istringstream in(out.str());
  TraceReader reader(in);
  TraceRecord rec;

  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.type(), EventType::kJobStart);
  EXPECT_EQ(rec.type_name(), "job_start");
  EXPECT_DOUBLE_EQ(rec.t(), 12.5);
  EXPECT_EQ(rec.line_number(), 1u);
  EXPECT_EQ(rec.require_int("job"), 7);
  EXPECT_EQ(rec.require_int("entry"), 42);
  EXPECT_DOUBLE_EQ(rec.require_num("wait_so_far"), 2.5);
  EXPECT_TRUE(rec.require_bool("backfill"));
  EXPECT_EQ(rec.require_str("policy"), "balancing");
  EXPECT_TRUE(rec.has("job"));
  EXPECT_FALSE(rec.has("nonexistent"));

  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.type(), EventType::kJobFinish);
  EXPECT_EQ(rec.line_number(), 2u);
  EXPECT_FALSE(rec.has("policy"));  // field buffers are reused, not leaked

  EXPECT_FALSE(reader.next(rec));
}

TEST(TraceReader, SkipsBlankLinesButCountsThem) {
  std::istringstream in(
      "\n{\"type\":\"job_submit\",\"t\":1}\n\n  \n{\"type\":\"job_finish\",\"t\":2}\n");
  TraceReader reader(in);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.line_number(), 2u);
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.line_number(), 5u);
  EXPECT_FALSE(reader.next(rec));
}

TEST(TraceReader, DecodesStringEscapes) {
  const auto rec = parse_one(
      "{\"type\":\"note\",\"t\":0,\"s\":\"a\\\"b\\\\c\\n\\t\\u0041\"}");
  EXPECT_EQ(rec.require_str("s"), "a\"b\\c\n\tA");
}

TEST(TraceReader, AcceptsNullAndNegativeAndExponentNumbers) {
  const auto rec = parse_one(
      "{\"type\":\"x\",\"t\":-1.5e2,\"n\":null,\"v\":-3}");
  EXPECT_DOUBLE_EQ(rec.t(), -150.0);
  EXPECT_TRUE(rec.has("n"));
  EXPECT_FALSE(rec.num("n").has_value());  // null is typeless
  EXPECT_EQ(rec.require_int("v"), -3);
}

TEST(TraceReader, ThrowsOnMalformedJson) {
  for (const char* bad : {
           "{\"type\":\"x\",\"t\":1",            // unterminated object
           "{\"type\":\"x\" \"t\":1}",           // missing comma
           "{\"type\":\"x\",\"t\":1} trailing",  // garbage after close
           "not json at all",
           "{\"type\":\"x\",\"t\":}",            // missing value
           "{\"type\":\"x\",\"t\":1,}",          // trailing comma
       }) {
    std::istringstream in(bad);
    TraceReader reader(in);
    TraceRecord rec;
    EXPECT_THROW(reader.next(rec), ParseError) << bad;
  }
}

TEST(TraceReader, RejectsNestedContainers) {
  for (const char* bad : {
           "{\"type\":\"x\",\"t\":1,\"a\":[1,2]}",
           "{\"type\":\"x\",\"t\":1,\"a\":{\"b\":2}}",
       }) {
    std::istringstream in(bad);
    TraceReader reader(in);
    TraceRecord rec;
    EXPECT_THROW(reader.next(rec), ParseError) << bad;
  }
}

TEST(TraceReader, RequiresTheTypeAndTimeHeader) {
  for (const char* bad : {
           "{\"t\":1,\"job\":2}",            // no type
           "{\"type\":\"job_start\"}",       // no t
           "{\"type\":7,\"t\":1}",           // type not a string
           "{\"type\":\"x\",\"t\":\"s\"}",   // t not a number
       }) {
    std::istringstream in(bad);
    TraceReader reader(in);
    TraceRecord rec;
    EXPECT_THROW(reader.next(rec), ParseError) << bad;
  }
}

TEST(TraceReader, ParseErrorNamesTheLine) {
  std::istringstream in("{\"type\":\"x\",\"t\":1}\nbroken\n");
  TraceReader reader(in);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  try {
    reader.next(rec);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(TraceReader, UnknownTypePreservesTheName) {
  const auto rec = parse_one("{\"type\":\"future_event\",\"t\":3}");
  EXPECT_EQ(rec.type(), EventType::kUnknown);
  EXPECT_EQ(rec.type_name(), "future_event");
}

TEST(TraceRecord, CheckedAccessorsThrowOnMissingOrMistyped) {
  const auto rec = parse_one("{\"type\":\"x\",\"t\":1,\"s\":\"v\",\"n\":2}");
  EXPECT_THROW(rec.require_num("missing"), ParseError);
  EXPECT_THROW(rec.require_num("s"), ParseError);
  EXPECT_THROW(rec.require_str("n"), ParseError);
  EXPECT_THROW(rec.require_bool("n"), ParseError);
  EXPECT_EQ(rec.num("s"), std::nullopt);  // optional accessors never throw
  EXPECT_EQ(rec.str("n"), std::nullopt);
  EXPECT_EQ(rec.boolean("missing"), std::nullopt);
}

TEST(EventType, NameRoundTrip) {
  for (int i = 0; i <= static_cast<int>(EventType::kUnknown); ++i) {
    const auto type = static_cast<EventType>(i);
    if (type == EventType::kUnknown) continue;
    EXPECT_EQ(event_type_from(to_string(type)), type) << to_string(type);
  }
  EXPECT_EQ(event_type_from("no_such_event"), EventType::kUnknown);
}

TEST(TypedEvents, JobStartDecodesAndValidates) {
  const auto rec = parse_one(
      "{\"type\":\"job_start\",\"t\":5,\"job\":9,\"entry\":17,"
      "\"alloc_size\":32,\"wait_so_far\":1.5,\"restarts\":2}");
  const JobStartEvent e = JobStartEvent::from(rec);
  EXPECT_DOUBLE_EQ(e.t, 5.0);
  EXPECT_EQ(e.job, 9);
  EXPECT_EQ(e.entry, 17);
  EXPECT_EQ(e.alloc_size, 32);
  EXPECT_DOUBLE_EQ(e.wait_so_far, 1.5);
  EXPECT_EQ(e.restarts, 2);

  const auto missing = parse_one("{\"type\":\"job_start\",\"t\":5,\"job\":9}");
  EXPECT_THROW(JobStartEvent::from(missing), ParseError);
}

TEST(TypedEvents, MachineStateDecodes) {
  const auto rec = parse_one(
      "{\"type\":\"machine_state\",\"t\":100,\"queue_depth\":3,"
      "\"queued_nodes\":96,\"running_jobs\":2,\"free_nodes\":64,"
      "\"down_nodes\":1,\"mfp\":32,\"frag\":0.5,\"flagged_nodes\":4}");
  const MachineStateEvent e = MachineStateEvent::from(rec);
  EXPECT_EQ(e.queue_depth, 3);
  EXPECT_EQ(e.queued_nodes, 96);
  EXPECT_EQ(e.running_jobs, 2);
  EXPECT_EQ(e.free_nodes, 64);
  EXPECT_EQ(e.down_nodes, 1);
  EXPECT_EQ(e.mfp, 32);
  EXPECT_DOUBLE_EQ(e.frag, 0.5);
  EXPECT_EQ(e.flagged_nodes, 4);
}

TEST(TypedEvents, SimEndDecodesAggregates) {
  const auto rec = parse_one(
      "{\"type\":\"sim_end\",\"t\":9000,\"jobs_completed\":10,\"span\":9000,"
      "\"avg_wait\":5,\"avg_response\":105,\"avg_bounded_slowdown\":1.2,"
      "\"utilization\":0.8,\"unused\":0.15,\"lost\":0.05,\"job_kills\":2,"
      "\"migrations\":1,\"checkpoints\":4,\"work_lost_node_seconds\":640}");
  const SimEndEvent e = SimEndEvent::from(rec);
  EXPECT_EQ(e.jobs_completed, 10);
  EXPECT_EQ(e.checkpoints, 4);
  EXPECT_DOUBLE_EQ(e.work_lost_node_seconds, 640.0);
}

}  // namespace
}  // namespace bgl::obs
