// Cross-validation of the three Appendix-9 partition finders against each
// other and against the production PartitionCatalog: on random occupancies
// all of them must report exactly the same canonical free-partition sets.
#include "torus/finders.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "torus/catalog.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

using BoxKey = std::tuple<int, int, int, int, int, int>;

BoxKey key(const Box& b) {
  return {b.shape.x, b.shape.y, b.shape.z, b.base.x, b.base.y, b.base.z};
}

std::set<BoxKey> keys(const std::vector<Box>& boxes) {
  std::set<BoxKey> out;
  for (const Box& b : boxes) out.insert(key(b));
  return out;
}

NodeSet random_occupancy(const Dims& dims, double density, Rng& rng) {
  NodeSet occ(dims.volume());
  for (int i = 0; i < dims.volume(); ++i) {
    if (rng.bernoulli(density)) occ.set(i);
  }
  return occ;
}

TEST(Finders, EmptyTorusCountsMatchCatalog) {
  const Dims dims = Dims::bluegene_l();
  PartitionCatalog catalog(dims);
  NodeSet occ(dims.volume());
  for (const int s : {1, 4, 8, 16, 32, 64, 128}) {
    const auto naive = find_free_naive(dims, occ, s);
    const auto [first, last] = catalog.size_range(s);
    EXPECT_EQ(static_cast<int>(naive.size()), last - first) << "size " << s;
  }
}

TEST(Finders, FullTorusFindsNothing) {
  const Dims dims{3, 3, 3};
  NodeSet occ(dims.volume());
  occ.fill();
  EXPECT_TRUE(find_free_naive(dims, occ, 1).empty());
  EXPECT_TRUE(find_free_pop(dims, occ, 1).empty());
  EXPECT_TRUE(find_free_divisor(dims, occ, 1).empty());
}

TEST(Finders, ResultsAreActuallyFree) {
  const Dims dims{4, 4, 8};
  Rng rng(7);
  const NodeSet occ = random_occupancy(dims, 0.35, rng);
  for (const Box& box : find_free_divisor(dims, occ, 8)) {
    for (const NodeId id : box_nodes(dims, box)) {
      EXPECT_FALSE(occ.test(static_cast<int>(id)));
    }
  }
}

TEST(Finders, AllNaiveContainsEverySizeSubset) {
  const Dims dims{3, 3, 3};
  Rng rng(11);
  const NodeSet occ = random_occupancy(dims, 0.3, rng);
  const auto all = keys(find_free_all_naive(dims, occ));
  for (int s = 1; s <= dims.volume(); ++s) {
    for (const Box& b : find_free_naive(dims, occ, s)) {
      EXPECT_TRUE(all.count(key(b)) > 0);
    }
  }
}

struct FinderCase {
  int mx, my, mz;
  double density;
  int size;
  std::uint64_t seed;
};

class FinderAgreement : public ::testing::TestWithParam<FinderCase> {};

TEST_P(FinderAgreement, AllThreeFindersAndCatalogAgree) {
  const FinderCase c = GetParam();
  const Dims dims{c.mx, c.my, c.mz};
  Rng rng(c.seed);
  const NodeSet occ = random_occupancy(dims, c.density, rng);

  const auto naive = keys(find_free_naive(dims, occ, c.size));
  const auto pop = keys(find_free_pop(dims, occ, c.size));
  const auto divisor = keys(find_free_divisor(dims, occ, c.size));
  EXPECT_EQ(naive, pop);
  EXPECT_EQ(naive, divisor);

  PartitionCatalog catalog(dims);
  std::vector<int> free;
  catalog.free_entries_of_size(occ, c.size, free);
  std::set<BoxKey> from_catalog;
  for (const int idx : free) from_catalog.insert(key(catalog.entry(idx).box));
  EXPECT_EQ(naive, from_catalog);
}

INSTANTIATE_TEST_SUITE_P(
    RandomOccupancies, FinderAgreement,
    ::testing::Values(
        FinderCase{4, 4, 8, 0.0, 32, 1}, FinderCase{4, 4, 8, 0.2, 8, 2},
        FinderCase{4, 4, 8, 0.2, 32, 3}, FinderCase{4, 4, 8, 0.5, 16, 4},
        FinderCase{4, 4, 8, 0.5, 4, 5}, FinderCase{4, 4, 8, 0.8, 2, 6},
        FinderCase{4, 4, 8, 0.8, 1, 7}, FinderCase{4, 4, 8, 0.3, 128, 8},
        FinderCase{4, 4, 8, 0.1, 64, 9}, FinderCase{4, 4, 8, 0.4, 14, 10},
        FinderCase{3, 3, 3, 0.3, 9, 11}, FinderCase{3, 3, 3, 0.5, 3, 12},
        FinderCase{2, 2, 2, 0.4, 4, 13}, FinderCase{2, 2, 2, 0.6, 2, 14},
        FinderCase{5, 5, 5, 0.3, 25, 15}, FinderCase{5, 5, 5, 0.5, 10, 16},
        FinderCase{6, 6, 6, 0.4, 36, 17}, FinderCase{6, 6, 6, 0.2, 12, 18},
        FinderCase{1, 1, 8, 0.3, 4, 19}, FinderCase{4, 1, 1, 0.5, 2, 20},
        FinderCase{2, 3, 5, 0.3, 6, 21}, FinderCase{2, 3, 5, 0.5, 5, 22}));

TEST(Finders, PrimeOversizedShapeYieldsNothing) {
  const Dims dims{4, 4, 8};
  NodeSet occ(dims.volume());
  EXPECT_TRUE(find_free_naive(dims, occ, 13).empty());
  EXPECT_TRUE(find_free_pop(dims, occ, 13).empty());
  EXPECT_TRUE(find_free_divisor(dims, occ, 13).empty());
}

TEST(Finders, SkipOptimizationStillFindsIsolatedHole) {
  // Occupy everything except one 1x1x4 column segment; the divisor finder's
  // base-skipping must still locate it.
  const Dims dims{4, 4, 8};
  NodeSet occ(dims.volume());
  occ.fill();
  for (int z = 2; z < 6; ++z) occ.reset(node_id(dims, Coord{1, 2, z}));
  const auto found = find_free_divisor(dims, occ, 4);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].base, (Coord{1, 2, 2}));
  EXPECT_EQ(found[0].shape, (Triple{1, 1, 4}));
  EXPECT_EQ(keys(found), keys(find_free_naive(dims, occ, 4)));
}

}  // namespace
}  // namespace bgl
