#include "util/table.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "util/error.hpp"

namespace bgl {
namespace {

TEST(Table, RenderAlignsColumns) {
  Table t({"name", "value"});
  t.add_row().add("x").add(1.5, 1);
  t.add_row().add("longer").add(2LL);
  const std::string text = t.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row().add("plain").add("with,comma");
  t.add_row().add("with\"quote").add("x");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.add_row().add("ok");
  EXPECT_THROW(t.add("overflow"), ContractViolation);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"c"});
  EXPECT_THROW(t.add("x"), ContractViolation);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), ContractViolation);
}

TEST(Table, RowCount) {
  Table t({"c"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row().add("1");
  t.add_row().add("2");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.add_row().add("alpha").add(3LL);
  const std::string path = testing::TempDir() + "/bgl_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,3");
}

}  // namespace
}  // namespace bgl
