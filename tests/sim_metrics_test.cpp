#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bgl {
namespace {

JobOutcome make_outcome(double arrival, double start, double finish, double runtime,
                        double estimate = 0.0) {
  JobOutcome j;
  j.arrival = arrival;
  j.first_start = start;
  j.last_start = start;
  j.finish = finish;
  j.runtime = runtime;
  j.estimate = estimate > 0.0 ? estimate : runtime;
  return j;
}

TEST(BoundedSlowdown, StandardDefinition) {
  MetricsConfig config;
  // Response 200, runtime 100 -> slowdown 2.
  EXPECT_DOUBLE_EQ(bounded_slowdown(make_outcome(0, 100, 200, 100), config), 2.0);
  // Tiny job: response 5, runtime 1 -> max(5,10)/max(1,10) = 1.
  EXPECT_DOUBLE_EQ(bounded_slowdown(make_outcome(0, 4, 5, 1), config), 1.0);
  // Short job with long wait: response 1000, runtime 2 -> 1000/10 = 100.
  EXPECT_DOUBLE_EQ(bounded_slowdown(make_outcome(0, 998, 1000, 2), config), 100.0);
}

TEST(BoundedSlowdown, NoWaitJobHasUnitSlowdown) {
  MetricsConfig config;
  EXPECT_DOUBLE_EQ(bounded_slowdown(make_outcome(0, 0, 500, 500), config), 1.0);
}

TEST(BoundedSlowdown, PaperMinDenominatorVariant) {
  MetricsConfig config;
  config.use_paper_min_denominator = true;
  // Denominator min(runtime, 10) = 10 for runtime 100 -> 200/10 = 20.
  EXPECT_DOUBLE_EQ(bounded_slowdown(make_outcome(0, 100, 200, 100), config), 20.0);
}

TEST(BoundedSlowdown, EstimateDenominatorVariant) {
  MetricsConfig config;
  config.use_estimate_denominator = true;
  EXPECT_DOUBLE_EQ(bounded_slowdown(make_outcome(0, 100, 200, 100, 200), config),
                   1.0);
}

TEST(BoundedSlowdown, GammaValidated) {
  MetricsConfig config;
  config.gamma = 0.0;
  EXPECT_THROW(bounded_slowdown(make_outcome(0, 0, 1, 1), config), ContractViolation);
}

TEST(JobOutcome, WaitAndResponse) {
  JobOutcome j = make_outcome(100, 150, 400, 250);
  EXPECT_DOUBLE_EQ(j.wait(), 50.0);
  EXPECT_DOUBLE_EQ(j.response(), 300.0);
}

TEST(CapacityIntegrator, ConstantSurplus) {
  CapacityIntegrator integ;
  integ.start(0.0, 100, 20);
  integ.advance(10.0);
  EXPECT_DOUBLE_EQ(integ.unused_integral(), 800.0);  // (100-20)*10
}

TEST(CapacityIntegrator, QueueDemandExceedsFree) {
  CapacityIntegrator integ;
  integ.start(0.0, 10, 50);
  integ.advance(5.0);
  EXPECT_DOUBLE_EQ(integ.unused_integral(), 0.0);  // max(0, 10-50) = 0
}

TEST(CapacityIntegrator, PiecewiseChanges) {
  CapacityIntegrator integ;
  integ.start(0.0, 128, 0);
  integ.advance(10.0);              // 128 * 10
  integ.set_free(64);
  integ.add_queued(32);
  integ.advance(20.0);              // (64-32) * 10
  integ.add_free(-64);              // free 0
  integ.set_queued(0);
  integ.advance(30.0);              // 0 * 10
  EXPECT_DOUBLE_EQ(integ.unused_integral(), 1280.0 + 320.0);
}

TEST(CapacityIntegrator, AdvanceBeforeStartIsIgnored) {
  CapacityIntegrator integ;
  integ.advance(100.0);
  EXPECT_DOUBLE_EQ(integ.unused_integral(), 0.0);
  integ.start(100.0, 10, 0);
  integ.advance(101.0);
  EXPECT_DOUBLE_EQ(integ.unused_integral(), 10.0);
}

TEST(CapacityIntegrator, TimeMustNotGoBackwards) {
  CapacityIntegrator integ;
  integ.start(0.0, 10, 0);
  integ.advance(5.0);
  EXPECT_THROW(integ.advance(4.0), ContractViolation);
}

TEST(CapacityIntegrator, DoubleStartThrows) {
  CapacityIntegrator integ;
  integ.start(0.0, 10, 0);
  EXPECT_THROW(integ.start(1.0, 10, 0), ContractViolation);
}

}  // namespace
}  // namespace bgl
