// Regression tests for simulate_cli's option parsing
// (examples/cli_options.hpp): every malformed flag is a hard ConfigError —
// the parser must never fall back to a silent default (the old
// parse_int(...).value_or(default) behaviour turned "--jobs banana" into a
// 0-job run).
#include "../examples/cli_options.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bgl_cli {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"simulate_cli"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_cli_options(static_cast<int>(argv.size()), argv.data());
}

std::string error_of(std::initializer_list<const char*> args) {
  try {
    parse(args);
  } catch (const bgl::ConfigError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ConfigError";
  return {};
}

TEST(CliOptions, DefaultsAndFullParse) {
  const Options defaults = parse({});
  EXPECT_EQ(defaults.workload, "sdsc");
  EXPECT_EQ(defaults.jobs, 2000);
  EXPECT_EQ(defaults.seed, 42u);
  EXPECT_TRUE(defaults.migration);

  const Options o = parse({"--workload", "nasa", "--jobs", "500", "--load",
                           "1.2", "--failures", "100", "--scheduler",
                           "tiebreak", "--algorithm", "easy", "--alpha",
                           "0.25", "--no-migration", "--ckpt-interval",
                           "3600", "--downtime", "14400", "--seed", "7",
                           "--trace-out", "t.jsonl", "--stats-out", "s.json",
                           "--snapshot-interval", "60",
                           "--conservative-backfill"});
  EXPECT_EQ(o.workload, "nasa");
  EXPECT_EQ(o.jobs, 500);
  EXPECT_DOUBLE_EQ(o.load, 1.2);
  ASSERT_TRUE(o.failures.has_value());
  EXPECT_EQ(*o.failures, 100u);
  EXPECT_EQ(o.scheduler, "tiebreak");
  EXPECT_EQ(o.algorithm, "easy");
  EXPECT_DOUBLE_EQ(o.alpha, 0.25);
  EXPECT_FALSE(o.migration);
  EXPECT_DOUBLE_EQ(o.ckpt_interval, 3600.0);
  EXPECT_DOUBLE_EQ(o.downtime, 14400.0);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_EQ(o.trace_out.value(), "t.jsonl");
  EXPECT_EQ(o.stats_out.value(), "s.json");
  EXPECT_DOUBLE_EQ(o.snapshot_interval, 60.0);
  EXPECT_EQ(o.backfill, bgl::BackfillMode::kConservative);
}

TEST(CliOptions, MalformedNumbersAreHardErrorsNamingTheFlag) {
  EXPECT_NE(error_of({"--jobs", "banana"}).find("--jobs"), std::string::npos);
  EXPECT_NE(error_of({"--jobs", "banana"}).find("banana"), std::string::npos);
  EXPECT_NE(error_of({"--load", "fast"}).find("--load"), std::string::npos);
  EXPECT_NE(error_of({"--alpha", "x"}).find("--alpha"), std::string::npos);
  EXPECT_NE(error_of({"--seed", "0x"}).find("--seed"), std::string::npos);
  EXPECT_NE(error_of({"--failures", "3.5"}).find("--failures"),
            std::string::npos);
  EXPECT_NE(error_of({"--ckpt-interval", ""}).find("--ckpt-interval"),
            std::string::npos);
  EXPECT_NE(error_of({"--downtime", "soon"}).find("--downtime"),
            std::string::npos);
  EXPECT_NE(error_of({"--snapshot-interval", "?"}).find("--snapshot-interval"),
            std::string::npos);
}

TEST(CliOptions, MissingValuesAndUnknownFlagsAreHardErrors) {
  EXPECT_NE(error_of({"--jobs"}).find("requires a value"), std::string::npos);
  EXPECT_NE(error_of({"--workload"}).find("requires a value"),
            std::string::npos);
  EXPECT_NE(error_of({"--frobnicate"}).find("unknown option"),
            std::string::npos);
  EXPECT_NE(error_of({"--frobnicate"}).find("--frobnicate"),
            std::string::npos);
}

TEST(CliOptions, DomainChecks) {
  EXPECT_NE(error_of({"--jobs", "0"}).find("--jobs"), std::string::npos);
  EXPECT_NE(error_of({"--load", "-1"}).find("--load"), std::string::npos);
  EXPECT_NE(error_of({"--alpha", "1.5"}).find("--alpha"), std::string::npos);
  EXPECT_NE(error_of({"--failures", "-2"}).find("--failures"),
            std::string::npos);
  EXPECT_NE(error_of({"--ckpt-interval", "0"}).find("--ckpt-interval"),
            std::string::npos);
}

}  // namespace
}  // namespace bgl_cli
