#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "workload/synthetic.hpp"

namespace bgl {
namespace {

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(Dims::bluegene_l());
  return instance;
}

SimResult replay_run(SchedulerKind kind, double alpha, std::uint64_t seed) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 250;
  Workload w = generate_workload(model, seed);
  w = rescale_sizes(w, 128);
  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  const FailureTrace trace = generate_failures(
      FailureModel::bluegene_l(static_cast<std::size_t>(10.0 * span / 86400.0), span),
      seed);
  SimConfig config;
  config.scheduler = kind;
  config.alpha = alpha;
  config.record_replay = true;
  return run_simulation(w, trace, config, &catalog());
}

TEST(Replay, RecordedLogValidates) {
  for (const SchedulerKind kind :
       {SchedulerKind::kKrevat, SchedulerKind::kBalancing, SchedulerKind::kTieBreak}) {
    const SimResult r = replay_run(kind, 0.5, 21);
    ASSERT_FALSE(r.replay.empty());
    const ReplayValidation v = validate_replay(r.replay, catalog());
    EXPECT_TRUE(v.ok) << v.error;
  }
}

TEST(Replay, LogStructureMatchesCounters) {
  const SimResult r = replay_run(SchedulerKind::kBalancing, 0.1, 33);
  std::size_t starts = 0;
  std::size_t finishes = 0;
  std::size_t kills = 0;
  std::size_t arrivals = 0;
  std::size_t failures = 0;
  std::size_t migrations = 0;
  for (const ReplayEvent& e : r.replay) {
    switch (e.type) {
      case ReplayEventType::kStart: ++starts; break;
      case ReplayEventType::kFinish: ++finishes; break;
      case ReplayEventType::kKill: ++kills; break;
      case ReplayEventType::kArrival: ++arrivals; break;
      case ReplayEventType::kNodeFailure: ++failures; break;
      case ReplayEventType::kMigration: ++migrations; break;
    }
  }
  EXPECT_EQ(arrivals, r.jobs_completed);
  EXPECT_EQ(finishes, r.jobs_completed);
  EXPECT_EQ(kills, r.job_kills);
  EXPECT_EQ(starts, finishes + kills);  // every run segment ends exactly once
  EXPECT_EQ(failures, r.failures_total);
  EXPECT_EQ(migrations, r.migrations);
}

TEST(Replay, DeterministicAcrossRuns) {
  const SimResult a = replay_run(SchedulerKind::kTieBreak, 0.5, 44);
  const SimResult b = replay_run(SchedulerKind::kTieBreak, 0.5, 44);
  EXPECT_EQ(a.replay, b.replay);
}

TEST(Replay, DisabledByDefault) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 50;
  Workload w = generate_workload(model, 3);
  w = rescale_sizes(w, 128);
  SimConfig config;
  const SimResult r = run_simulation(w, FailureTrace({}, 128), config, &catalog());
  EXPECT_TRUE(r.replay.empty());
}

TEST(Replay, ValidatorRejectsOverlappingStarts) {
  const auto [first, last] = catalog().size_range(128);
  ASSERT_LT(first, last);
  const std::vector<ReplayEvent> bad = {
      {0.0, ReplayEventType::kStart, 1, -1, first},
      {1.0, ReplayEventType::kStart, 2, -1, first},
  };
  const ReplayValidation v = validate_replay(bad, catalog());
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("overlaps"), std::string::npos);
}

TEST(Replay, ValidatorRejectsReleaseOfUnknownJob) {
  const auto [first, last] = catalog().size_range(64);
  const std::vector<ReplayEvent> bad = {
      {0.0, ReplayEventType::kFinish, 9, -1, first},
  };
  EXPECT_FALSE(validate_replay(bad, catalog()).ok);
}

TEST(Replay, ValidatorRejectsBackwardsTime) {
  const auto [first, last] = catalog().size_range(64);
  const std::vector<ReplayEvent> bad = {
      {10.0, ReplayEventType::kStart, 1, -1, first},
      {5.0, ReplayEventType::kFinish, 1, -1, first},
  };
  EXPECT_FALSE(validate_replay(bad, catalog()).ok);
}

TEST(Replay, ValidatorAcceptsMigrationRotation) {
  // Two jobs swap partitions at the same timestamp — legal because the
  // driver releases all movers first.
  const auto [f64, l64] = catalog().size_range(64);
  ASSERT_GE(l64 - f64, 2);
  // Find two disjoint 64-partitions.
  int a = f64;
  int b = -1;
  for (int i = f64 + 1; i < l64; ++i) {
    if (!catalog().entry(i).mask.intersects(catalog().entry(a).mask)) {
      b = i;
      break;
    }
  }
  ASSERT_GE(b, 0);
  const std::vector<ReplayEvent> log = {
      {0.0, ReplayEventType::kStart, 1, -1, a},
      {0.0, ReplayEventType::kStart, 2, -1, b},
      {5.0, ReplayEventType::kMigration, 1, -1, b},
      {5.0, ReplayEventType::kMigration, 2, -1, a},
      {9.0, ReplayEventType::kFinish, 1, -1, b},
      {9.5, ReplayEventType::kFinish, 2, -1, a},
  };
  const ReplayValidation v = validate_replay(log, catalog());
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Replay, CsvWriterProducesHeaderAndRows) {
  const SimResult r = replay_run(SchedulerKind::kKrevat, 0.0, 55);
  const std::string path = testing::TempDir() + "/bgl_replay.csv";
  write_replay_csv(path, r.replay, catalog());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time,type,job,node,entry,base,shape");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, r.replay.size());
}

}  // namespace
}  // namespace bgl
