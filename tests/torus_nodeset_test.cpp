#include "torus/nodeset.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

TEST(NodeSet, SetResetTest) {
  NodeSet s(128);
  EXPECT_EQ(s.count(), 0);
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(127);
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_FALSE(s.test(1));
  s.reset(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 3);
}

TEST(NodeSet, OutOfRangeThrows) {
  NodeSet s(10);
  EXPECT_THROW(s.set(10), ContractViolation);
  EXPECT_THROW(s.test(-1), ContractViolation);
}

TEST(NodeSet, FillAndClear) {
  NodeSet s(70);
  s.fill();
  EXPECT_EQ(s.count(), 70);
  s.clear();
  EXPECT_EQ(s.count(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(NodeSet, Intersects) {
  NodeSet a(128);
  NodeSet b(128);
  a.set(5);
  b.set(6);
  EXPECT_FALSE(a.intersects(b));
  b.set(5);
  EXPECT_TRUE(a.intersects(b));
}

TEST(NodeSet, IntersectCount) {
  NodeSet a(128);
  NodeSet b(128);
  for (int i = 0; i < 128; i += 2) a.set(i);
  for (int i = 0; i < 128; i += 3) b.set(i);
  int expected = 0;
  for (int i = 0; i < 128; i += 6) ++expected;
  EXPECT_EQ(a.intersect_count(b), expected);
}

TEST(NodeSet, IntersectsOrAvoidsTemporary) {
  NodeSet mask(128);
  mask.set(100);
  NodeSet a(128);
  NodeSet b(128);
  EXPECT_FALSE(mask.intersects_or(a, b));
  b.set(100);
  EXPECT_TRUE(mask.intersects_or(a, b));
  b.reset(100);
  a.set(100);
  EXPECT_TRUE(mask.intersects_or(a, b));
}

TEST(NodeSet, SubsetRelation) {
  NodeSet small(64);
  NodeSet big(64);
  small.set(3);
  big.set(3);
  big.set(9);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  NodeSet empty(64);
  EXPECT_TRUE(empty.is_subset_of(small));
}

TEST(NodeSet, UnionIntersectionSubtract) {
  NodeSet a(64);
  NodeSet b(64);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  NodeSet u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3);
  NodeSet i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1);
  EXPECT_TRUE(i.test(2));
  NodeSet d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), 1);
  EXPECT_TRUE(d.test(1));
}

TEST(NodeSet, SizeMismatchThrows) {
  NodeSet a(64);
  NodeSet b(65);
  EXPECT_THROW((void)a.intersects(b), ContractViolation);
}

TEST(NodeSet, ToIdsAscending) {
  NodeSet s(128);
  s.set(127);
  s.set(0);
  s.set(64);
  EXPECT_EQ(s.to_ids(), (std::vector<int>{0, 64, 127}));
}

TEST(NodeSet, HashDistinguishesSets) {
  NodeSet a(128);
  NodeSet b(128);
  a.set(1);
  b.set(2);
  EXPECT_NE(a.hash(), b.hash());
  NodeSet c(128);
  c.set(1);
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(NodeSet, EqualityIsStructural) {
  NodeSet a(32);
  NodeSet b(32);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

TEST(NodeSet, RandomizedCountMatchesReference) {
  Rng rng(4242);
  NodeSet s(200);
  std::vector<bool> ref(200, false);
  for (int step = 0; step < 1000; ++step) {
    const int id = static_cast<int>(rng.uniform_int(0, 199));
    if (rng.bernoulli(0.5)) {
      s.set(id);
      ref[static_cast<std::size_t>(id)] = true;
    } else {
      s.reset(id);
      ref[static_cast<std::size_t>(id)] = false;
    }
  }
  int expected = 0;
  for (const bool v : ref) expected += v ? 1 : 0;
  EXPECT_EQ(s.count(), expected);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(s.test(i), ref[static_cast<std::size_t>(i)]);
}

// --- Small-buffer / full-machine-scale behaviour ---------------------------

TEST(NodeSet, LargeSetKernelsMatchSmallSetSemantics) {
  // 65 536 bits = 1 024 words: heap storage and the 4-word unrolled
  // kernels, validated against a bit-by-bit reference.
  const int bits = 65536;
  Rng rng(0xBEEF);
  NodeSet a(bits), b(bits);
  std::vector<bool> ra(static_cast<std::size_t>(bits), false);
  std::vector<bool> rb(static_cast<std::size_t>(bits), false);
  for (int k = 0; k < 4000; ++k) {
    const int id = static_cast<int>(
        rng.uniform_int(0, static_cast<std::uint64_t>(bits - 1)));
    if (rng.bernoulli(0.5)) {
      a.set(id);
      ra[static_cast<std::size_t>(id)] = true;
    } else {
      b.set(id);
      rb[static_cast<std::size_t>(id)] = true;
    }
  }

  int expect_count = 0, expect_both = 0;
  bool expect_intersects = false;
  for (int i = 0; i < bits; ++i) {
    expect_count += ra[static_cast<std::size_t>(i)] ? 1 : 0;
    if (ra[static_cast<std::size_t>(i)] && rb[static_cast<std::size_t>(i)]) {
      ++expect_both;
      expect_intersects = true;
    }
  }
  EXPECT_EQ(a.count(), expect_count);
  EXPECT_EQ(a.intersects(b), expect_intersects);
  EXPECT_EQ(a.intersect_count(b), expect_both);

  NodeSet u = a;
  u |= b;
  NodeSet d = a;
  d.subtract(b);
  for (int i = 0; i < bits; i += 97) {  // sampled verification
    const auto si = static_cast<std::size_t>(i);
    EXPECT_EQ(u.test(i), ra[si] || rb[si]);
    EXPECT_EQ(d.test(i), ra[si] && !rb[si]);
  }
}

TEST(NodeSet, EmptyEarlyExitsAndTracksState) {
  NodeSet s(65536);
  EXPECT_TRUE(s.empty());
  s.set(65535);  // worst case for a scan, still correct
  EXPECT_FALSE(s.empty());
  s.reset(65535);
  EXPECT_TRUE(s.empty());
}

TEST(NodeSet, AnyInWordRangeProbesExactSpan) {
  NodeSet s(1024);  // 16 words
  s.set(64 * 5 + 3);
  EXPECT_TRUE(s.any_in_word_range(5, 6));
  EXPECT_TRUE(s.any_in_word_range(0, 16));
  EXPECT_FALSE(s.any_in_word_range(0, 5));
  EXPECT_FALSE(s.any_in_word_range(6, 16));
  EXPECT_FALSE(s.any_in_word_range(5, 5));  // empty range
}

TEST(NodeSet, CopyAndMoveAcrossStorageModes) {
  // Inline (128 bits) and heap (65 536 bits) objects must copy and move
  // with identical value semantics.
  for (const int bits : {128, 65536}) {
    NodeSet s(bits);
    s.set(1);
    s.set(bits - 1);

    NodeSet copy = s;
    EXPECT_EQ(copy, s);
    copy.set(2);
    EXPECT_FALSE(s.test(2));  // deep copy, no sharing

    NodeSet assigned(bits);
    assigned.set(7);
    assigned = s;
    EXPECT_EQ(assigned, s);

    NodeSet moved = std::move(copy);
    EXPECT_TRUE(moved.test(2));
    EXPECT_TRUE(moved.test(bits - 1));
    EXPECT_EQ(moved.bits(), bits);
  }
}

TEST(NodeSet, MutableWordsWriteThrough) {
  NodeSet s(256);
  s.mutable_words()[2] = 0x5ULL;
  EXPECT_TRUE(s.test(128));
  EXPECT_TRUE(s.test(130));
  EXPECT_EQ(s.count(), 2);
}

}  // namespace
}  // namespace bgl
