#include "torus/nodeset.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

TEST(NodeSet, SetResetTest) {
  NodeSet s(128);
  EXPECT_EQ(s.count(), 0);
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(127);
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_FALSE(s.test(1));
  s.reset(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 3);
}

TEST(NodeSet, OutOfRangeThrows) {
  NodeSet s(10);
  EXPECT_THROW(s.set(10), ContractViolation);
  EXPECT_THROW(s.test(-1), ContractViolation);
}

TEST(NodeSet, FillAndClear) {
  NodeSet s(70);
  s.fill();
  EXPECT_EQ(s.count(), 70);
  s.clear();
  EXPECT_EQ(s.count(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(NodeSet, Intersects) {
  NodeSet a(128);
  NodeSet b(128);
  a.set(5);
  b.set(6);
  EXPECT_FALSE(a.intersects(b));
  b.set(5);
  EXPECT_TRUE(a.intersects(b));
}

TEST(NodeSet, IntersectCount) {
  NodeSet a(128);
  NodeSet b(128);
  for (int i = 0; i < 128; i += 2) a.set(i);
  for (int i = 0; i < 128; i += 3) b.set(i);
  int expected = 0;
  for (int i = 0; i < 128; i += 6) ++expected;
  EXPECT_EQ(a.intersect_count(b), expected);
}

TEST(NodeSet, IntersectsOrAvoidsTemporary) {
  NodeSet mask(128);
  mask.set(100);
  NodeSet a(128);
  NodeSet b(128);
  EXPECT_FALSE(mask.intersects_or(a, b));
  b.set(100);
  EXPECT_TRUE(mask.intersects_or(a, b));
  b.reset(100);
  a.set(100);
  EXPECT_TRUE(mask.intersects_or(a, b));
}

TEST(NodeSet, SubsetRelation) {
  NodeSet small(64);
  NodeSet big(64);
  small.set(3);
  big.set(3);
  big.set(9);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  NodeSet empty(64);
  EXPECT_TRUE(empty.is_subset_of(small));
}

TEST(NodeSet, UnionIntersectionSubtract) {
  NodeSet a(64);
  NodeSet b(64);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  NodeSet u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3);
  NodeSet i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1);
  EXPECT_TRUE(i.test(2));
  NodeSet d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), 1);
  EXPECT_TRUE(d.test(1));
}

TEST(NodeSet, SizeMismatchThrows) {
  NodeSet a(64);
  NodeSet b(65);
  EXPECT_THROW((void)a.intersects(b), ContractViolation);
}

TEST(NodeSet, ToIdsAscending) {
  NodeSet s(128);
  s.set(127);
  s.set(0);
  s.set(64);
  EXPECT_EQ(s.to_ids(), (std::vector<int>{0, 64, 127}));
}

TEST(NodeSet, HashDistinguishesSets) {
  NodeSet a(128);
  NodeSet b(128);
  a.set(1);
  b.set(2);
  EXPECT_NE(a.hash(), b.hash());
  NodeSet c(128);
  c.set(1);
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(NodeSet, EqualityIsStructural) {
  NodeSet a(32);
  NodeSet b(32);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

TEST(NodeSet, RandomizedCountMatchesReference) {
  Rng rng(4242);
  NodeSet s(200);
  std::vector<bool> ref(200, false);
  for (int step = 0; step < 1000; ++step) {
    const int id = static_cast<int>(rng.uniform_int(0, 199));
    if (rng.bernoulli(0.5)) {
      s.set(id);
      ref[static_cast<std::size_t>(id)] = true;
    } else {
      s.reset(id);
      ref[static_cast<std::size_t>(id)] = false;
    }
  }
  int expected = 0;
  for (const bool v : ref) expected += v ? 1 : 0;
  EXPECT_EQ(s.count(), expected);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(s.test(i), ref[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace bgl
