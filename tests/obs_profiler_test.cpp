// Tests of the hierarchical phase profiler (src/obs/profiler.hpp): tree
// interning by (parent, phase), the self/total/child accounting identity,
// bounded-capacity overflow behaviour, deterministic merge, and the two
// renderers (nested JSON and the flat stats-line fields).
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace bgl::obs {
namespace {

/// begin/end a fixed call shape twice: pass { index_sync, enumerate,
/// backfill { enumerate } } — enumerate appears under two parents.
void record_pass(PhaseProfiler& p) {
  p.begin(Phase::kSchedPass);
  p.begin(Phase::kIndexSync);
  p.end();
  p.begin(Phase::kEnumerate);
  p.end();
  p.begin(Phase::kBackfill);
  p.begin(Phase::kEnumerate);
  p.end();
  p.end();
  p.end();
}

std::map<std::string, PhaseProfiler::NodeView> views_by_path(
    const PhaseProfiler& p) {
  std::map<std::string, PhaseProfiler::NodeView> out;
  for (std::size_t i = 0; i < p.num_nodes(); ++i) {
    PhaseProfiler::NodeView v = p.node_view(i);
    out.emplace(v.path, std::move(v));
  }
  return out;
}

TEST(PhaseProfiler, StartsEmpty) {
  PhaseProfiler p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.num_nodes(), 0u);
  EXPECT_EQ(p.dropped_spans(), 0u);
  EXPECT_EQ(p.count(Phase::kSchedPass), 0u);
  EXPECT_EQ(p.total_ns(Phase::kSchedPass), 0u);
}

TEST(PhaseProfiler, InternsOneNodePerParentPhasePair) {
  PhaseProfiler p;
  record_pass(p);
  record_pass(p);

  // 5 distinct (parent, phase) pairs despite 10 spans: the second pass
  // reuses every node.
  EXPECT_EQ(p.num_nodes(), 5u);
  const auto views = views_by_path(p);
  ASSERT_EQ(views.count("sched.pass"), 1u);
  ASSERT_EQ(views.count("sched.pass/sched.enumerate"), 1u);
  ASSERT_EQ(views.count("sched.pass/sched.backfill/sched.enumerate"), 1u);
  EXPECT_EQ(views.at("sched.pass").count, 2u);
  EXPECT_EQ(views.at("sched.pass/sched.enumerate").count, 2u);
  EXPECT_EQ(views.at("sched.pass/sched.backfill/sched.enumerate").count, 2u);
}

TEST(PhaseProfiler, AggregatesPhaseAcrossParents) {
  PhaseProfiler p;
  record_pass(p);
  // kEnumerate has two tree nodes (under pass and under backfill), each with
  // one span; the per-phase aggregate sums them.
  EXPECT_EQ(p.count(Phase::kEnumerate), 2u);
  const auto views = views_by_path(p);
  EXPECT_EQ(p.total_ns(Phase::kEnumerate),
            views.at("sched.pass/sched.enumerate").total_ns +
                views.at("sched.pass/sched.backfill/sched.enumerate").total_ns);
}

TEST(PhaseProfiler, SelfIsTotalMinusRecordedChildren) {
  PhaseProfiler p;
  record_pass(p);
  const auto views = views_by_path(p);
  const auto& pass = views.at("sched.pass");
  const std::uint64_t child_total =
      views.at("sched.pass/sched.index_sync").total_ns +
      views.at("sched.pass/sched.enumerate").total_ns +
      views.at("sched.pass/sched.backfill").total_ns;
  // Exact identity, not an approximation: child time is recorded into the
  // parent at each child end().
  EXPECT_EQ(pass.self_ns, pass.total_ns - child_total);
  EXPECT_GE(pass.total_ns, child_total);
  EXPECT_GE(pass.max_ns, pass.total_ns / pass.count);
}

TEST(PhaseProfiler, DepthOverflowIsCountedAndStaysBalanced) {
  PhaseProfiler p;
  const std::size_t extra = 5;
  for (std::size_t i = 0; i < PhaseProfiler::kMaxDepth + extra; ++i) {
    p.begin(Phase::kDesEvent);
  }
  for (std::size_t i = 0; i < PhaseProfiler::kMaxDepth + extra; ++i) {
    p.end();
  }
  EXPECT_EQ(p.dropped_spans(), extra);
  // The stack unwound completely: a fresh root span lands at the root.
  p.begin(Phase::kSchedPass);
  p.end();
  const auto views = views_by_path(p);
  EXPECT_EQ(views.count("sched.pass"), 1u);
}

TEST(PhaseProfiler, NodeCapCountsDroppedSpans) {
  PhaseProfiler p;
  // 11 roots x 11 children = 121 distinct pairs + 11 roots... the root
  // spans intern 11 nodes, the nested loop tries 121 more; everything
  // beyond kMaxNodes is counted, never silently lost.
  std::size_t attempted = 0;
  for (std::size_t a = 0; a < kNumPhases; ++a) {
    p.begin(static_cast<Phase>(a));
    ++attempted;
    for (std::size_t b = 0; b < kNumPhases; ++b) {
      p.begin(static_cast<Phase>(b));
      ++attempted;
      p.end();
    }
    p.end();
  }
  EXPECT_EQ(p.num_nodes(), PhaseProfiler::kMaxNodes);
  EXPECT_EQ(p.dropped_spans(), attempted - PhaseProfiler::kMaxNodes);
}

TEST(PhaseProfiler, UnbalancedEndIsIgnored) {
  PhaseProfiler p;
  p.end();  // nothing open
  EXPECT_TRUE(p.empty());
  record_pass(p);
  p.end();  // extra end after a balanced sequence
  EXPECT_EQ(p.num_nodes(), 5u);
}

TEST(PhaseProfiler, ResetClearsEverything) {
  PhaseProfiler p;
  record_pass(p);
  ASSERT_FALSE(p.empty());
  p.reset();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.dropped_spans(), 0u);
  record_pass(p);
  EXPECT_EQ(p.num_nodes(), 5u);
}

TEST(PhaseProfiler, MergeAccumulatesByPath) {
  PhaseProfiler a;
  PhaseProfiler b;
  record_pass(a);
  record_pass(b);
  record_pass(b);
  // b also has a path a lacks: a bare root event span.
  b.begin(Phase::kDesEvent);
  b.end();

  a.merge(b);
  const auto views = views_by_path(a);
  EXPECT_EQ(views.at("sched.pass").count, 3u);
  EXPECT_EQ(views.at("sched.pass/sched.backfill/sched.enumerate").count, 3u);
  ASSERT_EQ(views.count("des.event"), 1u);
  EXPECT_EQ(views.at("des.event").count, 1u);

  // Merging into an empty profiler reproduces the source tree.
  PhaseProfiler c;
  c.merge(a);
  const auto copied = views_by_path(c);
  EXPECT_EQ(copied.size(), views.size());
  for (const auto& [path, v] : views) {
    ASSERT_EQ(copied.count(path), 1u) << path;
    EXPECT_EQ(copied.at(path).count, v.count) << path;
    EXPECT_EQ(copied.at(path).total_ns, v.total_ns) << path;
  }
}

TEST(PhaseProfiler, WriteJsonHasTreeShape) {
  PhaseProfiler p;
  record_pass(p);
  std::ostringstream out;
  p.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tree\":["), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"sched.pass\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"self_ns\":"), std::string::npos);
}

TEST(PhaseProfiler, StatsFieldsAreFlatPathKeys) {
  PhaseProfiler p;
  record_pass(p);
  std::string line = "{\"type\":\"stats\"";
  p.append_stats_fields(line);
  line += "}";
  EXPECT_NE(line.find("\"ph_count:sched.pass\":1"), std::string::npos);
  EXPECT_NE(line.find("\"ph_total_ns:sched.pass/sched.backfill\":"),
            std::string::npos);
  EXPECT_NE(
      line.find("\"ph_self_ns:sched.pass/sched.backfill/sched.enumerate\":"),
      std::string::npos);
  // Flat by construction: no nested containers for the line scanner.
  EXPECT_EQ(line.find('['), std::string::npos);
  EXPECT_EQ(line.rfind('{'), 0u);
}

TEST(ScopedPhase, NullProfilerIsANoop) {
  ScopedPhase span(nullptr, Phase::kSchedPass);  // must not crash
  PhaseProfiler p;
  {
    ScopedPhase outer(&p, Phase::kSchedPass);
    ScopedPhase inner(&p, Phase::kScore);
  }
  const auto views = views_by_path(p);
  EXPECT_EQ(views.count("sched.pass/sched.score"), 1u);
}

TEST(PhaseProfiler, PhaseNamesAreStable) {
  EXPECT_EQ(phase_name(Phase::kDesEvent), "des.event");
  EXPECT_EQ(phase_name(Phase::kSvcEvent), "svc.event");
  EXPECT_EQ(phase_name(Phase::kSchedPass), "sched.pass");
  EXPECT_EQ(phase_name(Phase::kIndexSync), "sched.index_sync");
  EXPECT_EQ(phase_name(Phase::kEnumerate), "sched.enumerate");
  EXPECT_EQ(phase_name(Phase::kPlace), "sched.place");
  EXPECT_EQ(phase_name(Phase::kScore), "sched.score");
  EXPECT_EQ(phase_name(Phase::kPredict), "sched.predict");
  EXPECT_EQ(phase_name(Phase::kBackfill), "sched.backfill");
  EXPECT_EQ(phase_name(Phase::kMigration), "sched.migration");
  EXPECT_EQ(phase_name(Phase::kReservation), "sched.reservation");
}

}  // namespace
}  // namespace bgl::obs
