// Tests of the trace auditor (src/obs/audit.hpp): a clean trace from a real
// simulation must pass, seeded corruptions must be caught with the right
// violation code, and machine_state snapshots must be emitted without
// perturbing the simulation.
#include "obs/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"
#include "sim/driver.hpp"
#include "torus/catalog.hpp"

namespace bgl {
namespace {

using obs::AuditOptions;
using obs::AuditReport;
using obs::TraceSink;
using obs::ViolationCode;

bool has_code(const AuditReport& report, ViolationCode code) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [code](const obs::Violation& v) { return v.code == code; });
}

std::string codes_of(const AuditReport& report) {
  std::string out;
  for (const obs::Violation& v : report.violations) {
    out += std::string(obs::to_string(v.code)) + "(" + v.message + ") ";
  }
  return out;
}

AuditReport audit_string(const std::string& trace, AuditOptions opts = {}) {
  std::istringstream in(trace);
  return obs::audit_trace(in, opts);
}

Workload make_workload(std::vector<Job> jobs) {
  Workload w;
  w.name = "scripted";
  w.machine_nodes = 128;
  w.jobs = std::move(jobs);
  normalize(w);
  return w;
}

/// A run that exercises every event type: queueing, backfill, a failure
/// with downtime that kills a checkpointed job, and periodic snapshots.
std::string traced_run(double snapshot_interval, SimResult* result = nullptr) {
  Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 128},  // fills the machine
      Job{2, 10.0, 50.0, 60.0, 64},    // queues behind it
      Job{3, 20.0, 50.0, 60.0, 64},    // queues, runs in parallel with 2
      Job{4, 30.0, 40.0, 45.0, 32},    // backfill fodder
  });
  const FailureTrace trace({FailureEvent{40.0, 0}}, 128);
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.5;
  config.ckpt.enabled = true;
  config.ckpt.interval = 30.0;
  config.failure_semantics = FailureSemantics::kDownFor;
  config.node_downtime = 25.0;
  config.snapshot_interval = snapshot_interval;
  std::ostringstream out;
  TraceSink sink(out);
  config.obs.trace = &sink;
  const SimResult r = run_simulation(w, trace, config);
  if (result != nullptr) *result = r;
  return out.str();
}

// --- clean traces must pass ---

TEST(TraceAudit, CleanTracePassesStrict) {
  const std::string trace = traced_run(25.0);
  const AuditReport report = audit_string(trace, AuditOptions{.strict = true});
  EXPECT_TRUE(report.ok()) << codes_of(report);
  EXPECT_EQ(report.jobs, 4u);
  EXPECT_GT(report.events, 10u);
  EXPECT_EQ(report.unknown_events, 0u);
}

TEST(TraceAudit, CleanTracePassesForEveryScheduler) {
  for (const SchedulerKind kind : {SchedulerKind::kKrevat,
                                   SchedulerKind::kBalancing,
                                   SchedulerKind::kTieBreak}) {
    Workload w = make_workload({
        Job{1, 0.0, 80.0, 90.0, 64},
        Job{2, 5.0, 60.0, 70.0, 64},
        Job{3, 15.0, 60.0, 70.0, 32},
    });
    const FailureTrace trace({FailureEvent{30.0, 5}}, 128);
    SimConfig config;
    config.scheduler = kind;
    config.alpha = 0.3;
    std::ostringstream out;
    TraceSink sink(out);
    config.obs.trace = &sink;
    run_simulation(w, trace, config);
    const AuditReport report =
        audit_string(out.str(), AuditOptions{.strict = true});
    EXPECT_TRUE(report.ok())
        << to_string(kind) << ": " << codes_of(report);
  }
}

TEST(TraceAudit, EmptyTraceIsTruncated) {
  const AuditReport report = audit_string("");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ViolationCode::kTruncated));
}

TEST(TraceAudit, TraceWithoutSimEndIsTruncated) {
  std::string trace = traced_run(0.0);
  const auto pos = trace.find("\"type\":\"sim_end\"");
  ASSERT_NE(pos, std::string::npos);
  const auto line_start = trace.rfind('\n', pos) + 1;
  trace.erase(line_start);  // drop the final line
  const AuditReport report = audit_string(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ViolationCode::kTruncated)) << codes_of(report);
}

// --- seeded corruptions (the acceptance checklist) ---

/// Replace the raw value of `"key":<value>` in the first line of `trace`
/// (at or after `from`) that contains `marker`. Returns false if not found.
bool corrupt_field(std::string& trace, const std::string& marker,
                   const std::string& key, const std::string& new_raw,
                   std::size_t from = 0) {
  const auto line_pos = trace.find(marker, from);
  if (line_pos == std::string::npos) return false;
  const auto line_end = trace.find('\n', line_pos);
  auto value_pos = trace.find("\"" + key + "\":", line_pos);
  if (value_pos == std::string::npos || value_pos > line_end) return false;
  value_pos += key.size() + 3;
  auto value_end = value_pos;
  while (value_end < trace.size() && trace[value_end] != ',' &&
         trace[value_end] != '}') {
    ++value_end;
  }
  trace.replace(value_pos, value_end - value_pos, new_raw);
  return true;
}

TEST(TraceAudit, DetectsDroppedJobStart) {
  std::string trace = traced_run(25.0);
  const auto pos = trace.find("\"type\":\"job_start\"");
  ASSERT_NE(pos, std::string::npos);
  const auto line_start = trace.rfind('\n', pos) + 1;
  const auto line_end = trace.find('\n', pos);
  trace.erase(line_start, line_end - line_start + 1);

  const AuditReport report = audit_string(trace);
  EXPECT_FALSE(report.ok());
  // The orphaned sched_decision loses its pair, and the job later finishes
  // (or is killed / migrated) without ever having started.
  EXPECT_TRUE(has_code(report, ViolationCode::kDecisionPairing))
      << codes_of(report);
  EXPECT_TRUE(has_code(report, ViolationCode::kLifecycle)) << codes_of(report);
}

TEST(TraceAudit, DetectsWrongWait) {
  std::string trace = traced_run(0.0);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"job_finish\"", "wait", "86400"));
  const AuditReport report = audit_string(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ViolationCode::kWaitMismatch)) << codes_of(report);
  // The traced per-job value no longer averages to the sim_end aggregate.
  EXPECT_TRUE(has_code(report, ViolationCode::kAggregateMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsWrongResponseAndSlowdown) {
  std::string trace = traced_run(0.0);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"job_finish\"", "response", "1"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kResponseMismatch))
      << codes_of(report);
  EXPECT_TRUE(has_code(report, ViolationCode::kSlowdownMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsOverlappingPartitions) {
  // Hand-crafted: two jobs started on intersecting catalog entries. Entry
  // indices come from the same catalog the auditor rebuilds from sim_begin.
  const PartitionCatalog cat(Dims::bluegene_l());
  int full = -1;
  for (int i = 0; i < cat.num_entries(); ++i) {
    if (cat.entry(i).size == cat.num_nodes()) { full = i; break; }
  }
  ASSERT_GE(full, 0);
  const int other = full == 0 ? 1 : 0;  // everything intersects the full machine
  const int other_size = cat.entry(other).size;

  std::ostringstream t;
  t << "{\"type\":\"sim_begin\",\"t\":0,\"machine\":\"4x4x8\",\"nodes\":128,"
       "\"topology\":\"torus\",\"scheduler\":\"balancing\",\"policy\":\"bal\","
       "\"predictor\":\"paper\",\"alpha\":0.1,\"backfill\":\"easy\","
       "\"migration\":false,\"jobs\":2,\"failure_events\":0}\n";
  t << "{\"type\":\"job_submit\",\"t\":0,\"job\":1,\"size\":128,"
       "\"alloc_size\":128,\"estimate\":100,\"runtime\":100}\n";
  t << "{\"type\":\"job_submit\",\"t\":0,\"job\":2,\"size\":" << other_size
    << ",\"alloc_size\":" << other_size
    << ",\"estimate\":100,\"runtime\":100}\n";
  for (const auto& [job, entry, size] :
       {std::tuple{1, full, 128}, std::tuple{2, other, other_size}}) {
    t << "{\"type\":\"sched_decision\",\"t\":0,\"job\":" << job
      << ",\"policy\":\"bal\",\"entry\":" << entry
      << ",\"candidates\":1,\"l_mfp\":0,\"l_pf\":0,\"e_loss\":0,"
         "\"mfp_after\":0,\"flags_in_chosen\":0,\"backfill\":false}\n";
    t << "{\"type\":\"job_start\",\"t\":0,\"job\":" << job << ",\"entry\":"
      << entry << ",\"alloc_size\":" << size
      << ",\"wait_so_far\":0,\"restarts\":0}\n";
  }
  const AuditReport report = audit_string(t.str());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ViolationCode::kOverlap)) << codes_of(report);
}

TEST(TraceAudit, DetectsRewrittenEntryAsOverlapOnRealTrace) {
  // Two equal jobs arriving together start concurrently on disjoint
  // entries; re-pointing the second pair at the first pair's entry breaks
  // disjointness.
  Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 64},
      Job{2, 0.0, 100.0, 100.0, 64},
  });
  SimConfig config;
  std::ostringstream out;
  TraceSink sink(out);
  config.obs.trace = &sink;
  run_simulation(w, FailureTrace({}, 128), config);
  std::string trace = out.str();

  const auto start1 = trace.find("\"type\":\"job_start\"");
  ASSERT_NE(start1, std::string::npos);
  const auto entry_pos = trace.find("\"entry\":", start1) + 8;
  const auto entry_end = trace.find(',', entry_pos);
  const std::string entry1 = trace.substr(entry_pos, entry_end - entry_pos);
  const auto after_first = trace.find('\n', start1);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"sched_decision\"", "entry",
                            entry1, after_first));
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"job_start\"", "entry", entry1,
                            after_first));
  const AuditReport report = audit_string(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ViolationCode::kOverlap)) << codes_of(report);
}

TEST(TraceAudit, DetectsTimeGoingBackwards) {
  std::string trace = traced_run(0.0);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"sim_end\"", "t", "1"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kTimeOrder)) << codes_of(report);
}

TEST(TraceAudit, DetectsWrongRestartCount) {
  std::string trace = traced_run(0.0);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"job_kill\"", "restarts", "9"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kRestartMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsInflatedWorkLost) {
  std::string trace = traced_run(0.0);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"job_kill\"", "work_lost", "1e12"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kWorkAccounting))
      << codes_of(report);
}

TEST(TraceAudit, DetectsWrongVictimCount) {
  std::string trace = traced_run(0.0);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"node_failure\"", "victims", "3"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kVictimsMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsCorruptedSnapshot) {
  std::string trace = traced_run(25.0);
  ASSERT_TRUE(
      corrupt_field(trace, "\"type\":\"machine_state\"", "queue_depth", "77"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kSnapshotMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsCorruptedSimEndAggregate) {
  std::string trace = traced_run(0.0);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"sim_end\"", "avg_response", "1"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kAggregateMismatch))
      << codes_of(report);
}

/// A short adaptive-predictor run with metrics snapshots: exercises the
/// predictor provenance fields (sim_begin flag_window/burst_window) and the
/// pred_* forecast scores the predictor-seam corruption tests key on.
std::string adaptive_run(PredictorModel model = PredictorModel::kAdaptive,
                         SchedulerKind kind = SchedulerKind::kBalancing) {
  Workload w = make_workload({
      Job{1, 0.0, 80.0, 90.0, 64},
      Job{2, 5.0, 60.0, 70.0, 64},
      Job{3, 15.0, 60.0, 70.0, 32},
  });
  const FailureTrace trace({FailureEvent{30.0, 5}, FailureEvent{35.0, 5}}, 128);
  SimConfig config;
  config.scheduler = kind;
  config.predictor_model = model;
  config.alpha = 0.3;
  config.metrics_interval = 50.0;
  std::ostringstream out;
  TraceSink sink(out);
  config.obs.trace = &sink;
  run_simulation(w, trace, config);
  return out.str();
}

TEST(TraceAudit, CleanAdaptiveTracePassesStrict) {
  const AuditReport report =
      audit_string(adaptive_run(), AuditOptions{.strict = true});
  EXPECT_TRUE(report.ok()) << codes_of(report);
}

TEST(TraceAudit, DetectsMissingAdaptiveProvenance) {
  std::string trace = adaptive_run();
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"sim_begin\"", "flag_window", "0"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kPredictorMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsProvenanceFromNonAdaptivePredictor) {
  // Rewriting the declared predictor to an inert one leaves the adaptive
  // provenance fields (and any flags downstream) contradicting it.
  std::string trace = adaptive_run();
  ASSERT_TRUE(
      corrupt_field(trace, "\"type\":\"sim_begin\"", "predictor", "\"none\""));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kPredictorMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsFlagsFromInertPredictorPairing) {
  // krevat + paper is the inert pairing: its decisions must never report
  // flags in the chosen partition.
  std::string trace =
      adaptive_run(PredictorModel::kPaper, SchedulerKind::kKrevat);
  ASSERT_TRUE(
      corrupt_field(trace, "\"type\":\"sched_decision\"", "flags_in_chosen", "2"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kPredictorMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsForecastScoresFromInertPredictor) {
  std::string trace =
      adaptive_run(PredictorModel::kPaper, SchedulerKind::kKrevat);
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"metrics\"", "pred_tp", "1"));
  const AuditReport report = audit_string(trace);
  EXPECT_TRUE(has_code(report, ViolationCode::kPredictorMismatch))
      << codes_of(report);
}

TEST(TraceAudit, DetectsOutOfRangeForecastScores) {
  // pred_tp + pred_fp can never exceed the machine's node count, and the
  // counts are non-negative; both breaches are metrics-level corruption.
  std::string trace = adaptive_run();
  ASSERT_TRUE(corrupt_field(trace, "\"type\":\"metrics\"", "pred_fp", "999"));
  EXPECT_TRUE(has_code(audit_string(trace), ViolationCode::kMetricsMismatch))
      << codes_of(audit_string(trace));

  std::string trace2 = adaptive_run();
  ASSERT_TRUE(corrupt_field(trace2, "\"type\":\"metrics\"", "pred_fn", "-3"));
  EXPECT_TRUE(has_code(audit_string(trace2), ViolationCode::kMetricsMismatch))
      << codes_of(audit_string(trace2));
}

TEST(TraceAudit, UnknownEventsTolerantByDefaultStrictOptIn) {
  // Insert an unrecognised event just before sim_end, borrowing sim_end's
  // own t so the time-order invariant stays intact.
  std::string trace = traced_run(0.0);
  const auto pos = trace.find("{\"type\":\"sim_end\"");
  ASSERT_NE(pos, std::string::npos);
  const auto t_pos = trace.find("\"t\":", pos) + 4;
  auto t_end = t_pos;
  while (trace[t_end] != ',' && trace[t_end] != '}') ++t_end;
  const std::string t_raw = trace.substr(t_pos, t_end - t_pos);
  trace.insert(pos, "{\"type\":\"vendor_extension\",\"t\":" + t_raw + "}\n");

  AuditReport report = audit_string(trace);
  EXPECT_TRUE(report.ok()) << codes_of(report);
  EXPECT_EQ(report.unknown_events, 1u);

  report = audit_string(trace, AuditOptions{.strict = true});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ViolationCode::kUnknownEvent));
}

TEST(TraceAudit, MalformedLineIsAFormatViolation) {
  std::string trace = traced_run(0.0);
  trace += "this is not json\n";
  const AuditReport report = audit_string(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ViolationCode::kFormat)) << codes_of(report);
}

TEST(TraceAudit, MaxViolationsCapsTheReport) {
  std::string trace = traced_run(25.0);
  const auto pos = trace.find("\"type\":\"job_start\"");
  const auto line_start = trace.rfind('\n', pos) + 1;
  const auto line_end = trace.find('\n', pos);
  trace.erase(line_start, line_end - line_start + 1);
  const AuditReport report =
      audit_string(trace, AuditOptions{.max_violations = 1});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(), 1u);
  EXPECT_GT(report.dropped_violations, 0u);
}

TEST(TraceAudit, ReportJsonIsWellFormedEnoughToGrep) {
  const AuditReport report = audit_string("");
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"truncated\""), std::string::npos);
}

TEST(TraceAudit, ViolationCodeStringsAreStable) {
  // The CLI report and CI greps key on these exact strings.
  EXPECT_STREQ(obs::to_string(ViolationCode::kOverlap), "overlap");
  EXPECT_STREQ(obs::to_string(ViolationCode::kWaitMismatch), "wait_mismatch");
  EXPECT_STREQ(obs::to_string(ViolationCode::kDecisionPairing),
               "decision_pairing");
  EXPECT_STREQ(obs::to_string(ViolationCode::kAggregateMismatch),
               "aggregate_mismatch");
  EXPECT_STREQ(obs::to_string(ViolationCode::kTruncated), "truncated");
  EXPECT_STREQ(obs::to_string(ViolationCode::kPredictorMismatch),
               "predictor_mismatch");
}

// --- machine_state snapshots ---

TEST(Snapshots, EmittedAtTheConfiguredCadenceAndAuditClean) {
  const std::string trace = traced_run(20.0);
  std::size_t snapshots = 0;
  for (std::size_t pos = trace.find("\"type\":\"machine_state\"");
       pos != std::string::npos;
       pos = trace.find("\"type\":\"machine_state\"", pos + 1)) {
    ++snapshots;
  }
  // The run spans >= 150 simulated seconds; at one snapshot per 20 s there
  // must be a healthy number of them.
  EXPECT_GE(snapshots, 5u);
  const AuditReport report = audit_string(trace, AuditOptions{.strict = true});
  EXPECT_TRUE(report.ok()) << codes_of(report);
}

TEST(Snapshots, OffByDefaultAndNeverPerturbTheSimulation) {
  SimResult without;
  const std::string base = traced_run(0.0, &without);
  EXPECT_EQ(base.find("\"type\":\"machine_state\""), std::string::npos);

  SimResult with;
  traced_run(7.0, &with);
  // Snapshots are pure observation: every result metric is bit-identical.
  EXPECT_EQ(with.jobs_completed, without.jobs_completed);
  EXPECT_EQ(with.job_kills, without.job_kills);
  EXPECT_EQ(with.migrations, without.migrations);
  EXPECT_EQ(with.checkpoints_taken, without.checkpoints_taken);
  EXPECT_EQ(with.avg_wait, without.avg_wait);
  EXPECT_EQ(with.avg_response, without.avg_response);
  EXPECT_EQ(with.avg_bounded_slowdown, without.avg_bounded_slowdown);
  EXPECT_EQ(with.utilization, without.utilization);
  EXPECT_EQ(with.work_lost_node_seconds, without.work_lost_node_seconds);
}

TEST(Snapshots, DeterministicAcrossIdenticalRuns) {
  // Strip the wall_us field (real wall-clock time) before comparing; all
  // simulation content must be byte-identical across identical runs.
  const auto strip_wall = [](std::string trace) {
    for (auto pos = trace.find(",\"wall_us\":"); pos != std::string::npos;
         pos = trace.find(",\"wall_us\":", pos)) {
      auto end = pos + 11;
      while (end < trace.size() && trace[end] != ',' && trace[end] != '}') ++end;
      trace.erase(pos, end - pos);
    }
    return trace;
  };
  EXPECT_EQ(strip_wall(traced_run(15.0)), strip_wall(traced_run(15.0)));
}

}  // namespace
}  // namespace bgl
