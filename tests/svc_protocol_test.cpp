// Tests of the JSONL event/decision protocol codec (src/svc/protocol.hpp):
// decoding events from scanned lines, the typed rejections for malformed
// input, and the writers round-tripping through the trace reader.
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/reader.hpp"

namespace bgl::svc {
namespace {

Event decode(const std::string& line) {
  obs::TraceRecord record;
  obs::TraceReader::parse_line(line, 1, record);
  return event_from(record);
}

RejectCode code_of(const std::string& line) {
  try {
    decode(line);
  } catch (const ProtocolError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected ProtocolError for: " << line;
  return RejectCode::kParse;
}

TEST(SvcProtocol, DecodesEveryEventKind) {
  const Event submit = decode(
      R"({"type":"submit","t":12.5,"job":7,"size":32,"estimate":3600,"runtime":1800.25})");
  EXPECT_EQ(submit.kind, EventKind::kSubmit);
  EXPECT_DOUBLE_EQ(submit.time, 12.5);
  EXPECT_EQ(submit.job, 7u);
  EXPECT_EQ(submit.size, 32);
  EXPECT_DOUBLE_EQ(submit.estimate, 3600.0);
  EXPECT_DOUBLE_EQ(submit.runtime, 1800.25);

  const Event no_runtime =
      decode(R"({"type":"submit","t":0,"job":1,"size":1,"estimate":10})");
  EXPECT_LT(no_runtime.runtime, 0.0);  // unknown

  const Event complete = decode(R"({"type":"complete","t":99,"job":7})");
  EXPECT_EQ(complete.kind, EventKind::kComplete);
  EXPECT_EQ(complete.job, 7u);

  const Event fail = decode(R"({"type":"fail","t":100,"node":17})");
  EXPECT_EQ(fail.kind, EventKind::kFail);
  EXPECT_EQ(fail.node, 17);
  EXPECT_FALSE(fail.down);

  const Event down = decode(R"({"type":"fail","t":100,"node":17,"down":true})");
  EXPECT_TRUE(down.down);

  const Event repair = decode(R"({"type":"repair","t":200,"node":17})");
  EXPECT_EQ(repair.kind, EventKind::kRepair);
  EXPECT_EQ(repair.node, 17);

  const Event tick = decode(R"({"type":"tick","t":300})");
  EXPECT_EQ(tick.kind, EventKind::kTick);
  EXPECT_DOUBLE_EQ(tick.time, 300.0);
}

TEST(SvcProtocol, RejectsUnknownTypes) {
  EXPECT_EQ(code_of(R"({"type":"job_start","t":1,"job":1})"),
            RejectCode::kUnknownType);
  EXPECT_EQ(code_of(R"({"type":"","t":1})"), RejectCode::kUnknownType);
}

TEST(SvcProtocol, RejectsMissingAndMistypedFields) {
  // submit without its required fields.
  EXPECT_EQ(code_of(R"({"type":"submit","t":1})"), RejectCode::kBadField);
  EXPECT_EQ(code_of(R"({"type":"submit","t":1,"job":1,"size":4})"),
            RejectCode::kBadField);
  // job as a string is a type error, not a silent default.
  EXPECT_EQ(code_of(R"({"type":"submit","t":1,"job":"x","size":4,"estimate":1})"),
            RejectCode::kBadField);
  EXPECT_EQ(code_of(R"({"type":"complete","t":1})"), RejectCode::kBadField);
  EXPECT_EQ(code_of(R"({"type":"fail","t":1})"), RejectCode::kBadField);
  EXPECT_EQ(code_of(R"({"type":"repair","t":1})"), RejectCode::kBadField);
}

TEST(SvcProtocol, RejectsOutOfDomainValues) {
  // Non-integral, negative, and out-of-range ids/ints are codec-level
  // kBadValue rejections. (Semantic limits — size vs machine volume,
  // negative estimates — are the service's domain; see svc_service_test.)
  EXPECT_EQ(code_of(R"({"type":"submit","t":1,"job":1.5,"size":4,"estimate":1})"),
            RejectCode::kBadValue);
  EXPECT_EQ(
      code_of(R"({"type":"submit","t":1,"job":-3,"size":4,"estimate":1})"),
      RejectCode::kBadValue);
  EXPECT_EQ(
      code_of(R"({"type":"submit","t":1,"job":1e17,"size":4,"estimate":1})"),
      RejectCode::kBadValue);
  EXPECT_EQ(
      code_of(R"({"type":"submit","t":1,"job":1,"size":2.5,"estimate":1})"),
      RejectCode::kBadValue);
  EXPECT_EQ(code_of(R"({"type":"fail","t":1,"node":3e9})"),
            RejectCode::kBadValue);
  // A null timestamp never reaches the codec: the line scanner itself
  // refuses it, so a session surfaces it as a "parse" error.
  EXPECT_THROW(decode(R"({"type":"tick","t":null})"), ParseError);
  // A boolean where a number is expected is a field-type error.
  EXPECT_EQ(code_of(R"({"type":"fail","t":1,"node":true})"),
            RejectCode::kBadField);
}

TEST(SvcProtocol, ErrorCarriesLineNumber) {
  obs::TraceRecord record;
  obs::TraceReader::parse_line(R"({"type":"complete","t":1})", 42, record);
  try {
    event_from(record);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.line(), 42u);
    EXPECT_EQ(e.code(), RejectCode::kBadField);
    EXPECT_NE(std::string(e.what()).find("job"), std::string::npos);
  }
}

TEST(SvcProtocol, EventLinesRoundTrip) {
  Event e;
  e.kind = EventKind::kSubmit;
  e.time = 86423.50000000001;  // not representable in 10 significant digits
  e.job = 123456789;
  e.size = 512;
  e.estimate = 0.1;
  e.runtime = 1.0 / 3.0;
  std::string line;
  append_event_line(line, e);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  const Event back = decode(line.substr(0, line.size() - 1));
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.time, e.time);  // bit-exact: shortest round-trip formatting
  EXPECT_EQ(back.job, e.job);
  EXPECT_EQ(back.size, e.size);
  EXPECT_EQ(back.estimate, e.estimate);
  EXPECT_EQ(back.runtime, e.runtime);
}

TEST(SvcProtocol, DecisionLinesParseAsTraceRecords) {
  Decision d;
  d.kind = DecisionKind::kMigrate;
  d.time = 1e9 + 0.25;
  d.job = 9;
  d.entry = 31;
  d.from_entry = 7;
  std::string line;
  append_decision_line(line, d);

  obs::TraceRecord record;
  obs::TraceReader::parse_line(line.substr(0, line.size() - 1), 1, record);
  EXPECT_EQ(record.type_name(), "migrate");
  EXPECT_EQ(record.t(), 1e9 + 0.25);
  EXPECT_EQ(record.require_int("job"), 9);
  EXPECT_EQ(record.require_int("from_entry"), 7);
  EXPECT_EQ(record.require_int("to_entry"), 31);
}

TEST(SvcProtocol, ErrorLinesEscapeAndParse) {
  const ProtocolError err(RejectCode::kDuplicateJob, 3,
                          "job 7 \"already\" seen\\here");
  std::string line;
  append_error_line(line, 5.5, err);

  obs::TraceRecord record;
  obs::TraceReader::parse_line(line.substr(0, line.size() - 1), 1, record);
  EXPECT_EQ(record.type_name(), "error");
  EXPECT_EQ(record.require_str("code"), "duplicate-job");
  EXPECT_EQ(record.require_int("line"), 3);
  EXPECT_EQ(record.require_str("message"), "job 7 \"already\" seen\\here");
}

TEST(SvcProtocol, RejectCodeStringsAreStable) {
  EXPECT_STREQ(to_string(RejectCode::kParse), "parse");
  EXPECT_STREQ(to_string(RejectCode::kUnknownType), "unknown-type");
  EXPECT_STREQ(to_string(RejectCode::kBadField), "bad-field");
  EXPECT_STREQ(to_string(RejectCode::kBadValue), "bad-value");
  EXPECT_STREQ(to_string(RejectCode::kTimeOrder), "time-order");
  EXPECT_STREQ(to_string(RejectCode::kDuplicateJob), "duplicate-job");
  EXPECT_STREQ(to_string(RejectCode::kUnknownJob), "unknown-job");
  EXPECT_STREQ(to_string(RejectCode::kNotRunning), "not-running");
  EXPECT_STREQ(to_string(RejectCode::kBadNode), "bad-node");
  EXPECT_STREQ(to_string(RejectCode::kNodeState), "node-state");
  EXPECT_STREQ(to_string(RejectCode::kNoPartition), "no-partition");
}

}  // namespace
}  // namespace bgl::svc
