#include "util/math.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace bgl {
namespace {

TEST(Math, DivisorsOfTwelve) {
  EXPECT_EQ(divisors(12), (std::vector<int>{1, 2, 3, 4, 6, 12}));
}

TEST(Math, DivisorsOfPrime) {
  EXPECT_EQ(divisors(13), (std::vector<int>{1, 13}));
}

TEST(Math, DivisorsOfOne) { EXPECT_EQ(divisors(1), (std::vector<int>{1})); }

TEST(Math, DivisorsOfPerfectSquare) {
  EXPECT_EQ(divisors(36), (std::vector<int>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(Math, DivisorCountMatchesDivisors) {
  for (int n = 1; n <= 200; ++n) {
    EXPECT_EQ(divisor_count(n), static_cast<int>(divisors(n).size())) << n;
  }
}

TEST(Math, DivisorsRejectsNonPositive) {
  EXPECT_THROW(divisors(0), ContractViolation);
  EXPECT_THROW(divisors(-4), ContractViolation);
}

TEST(Math, DivisorTriplesVolumeAndBounds) {
  for (const int s : {1, 2, 8, 12, 32, 64, 128}) {
    for (const Triple& t : divisor_triples(s, 4, 4, 8)) {
      EXPECT_EQ(t.x * t.y * t.z, s);
      EXPECT_LE(t.x, 4);
      EXPECT_LE(t.y, 4);
      EXPECT_LE(t.z, 8);
      EXPECT_GE(t.x, 1);
    }
  }
}

TEST(Math, DivisorTriplesCountForBglSizes) {
  // On the 4x4x8 scheduler torus, size 128 has exactly one shape: 4x4x8.
  EXPECT_EQ(divisor_triples(128, 4, 4, 8).size(), 1u);
  // Size 1: only 1x1x1.
  EXPECT_EQ(divisor_triples(1, 4, 4, 8).size(), 1u);
  // Size 13 is prime and > 8: no shape fits.
  EXPECT_TRUE(divisor_triples(13, 4, 4, 8).empty());
  // Size 5: only 1x1x5.
  EXPECT_EQ(divisor_triples(5, 4, 4, 8).size(), 1u);
}

TEST(Math, DivisorTriplesAreUnique) {
  const auto triples = divisor_triples(32, 4, 4, 8);
  for (std::size_t i = 0; i < triples.size(); ++i) {
    for (std::size_t j = i + 1; j < triples.size(); ++j) {
      EXPECT_FALSE(triples[i] == triples[j]);
    }
  }
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 128), 1);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(64), 64);
  EXPECT_EQ(next_pow2(65), 128);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_FALSE(is_pow2(-8));
}

}  // namespace
}  // namespace bgl
