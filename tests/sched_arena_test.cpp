// PlacementArena / ArenaVector (src/sched/arena.hpp) and the scheduler's
// pooled-scratch mode: bump allocation semantics, reset reuse, and the
// contract that SchedulerConfig::arena_scratch changes no decision — the
// arena path and the pre-arena allocating reference must produce identical
// simulations.
#include "sched/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "workload/synthetic.hpp"

namespace bgl {
namespace {

TEST(PlacementArena, AllocatesAlignedDistinctBlocks) {
  PlacementArena arena;
  EXPECT_EQ(arena.reserved_bytes(), 0u);  // lazy: no chunk until first use

  int* a = arena.alloc<int>(10);
  double* b = arena.alloc<double>(4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(int), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);

  // Blocks do not overlap: writes through one stay invisible to the other.
  for (int i = 0; i < 10; ++i) a[i] = i;
  for (int i = 0; i < 4; ++i) b[i] = -1.0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a[i], i);
  EXPECT_GT(arena.reserved_bytes(), 0u);
}

TEST(PlacementArena, ResetReusesCapacityWithoutGrowth) {
  PlacementArena arena;
  (void)arena.alloc<std::uint64_t>(1000);
  const std::size_t reserved = arena.reserved_bytes();
  for (int pass = 0; pass < 50; ++pass) {
    arena.reset();
    (void)arena.alloc<std::uint64_t>(1000);
  }
  // Steady state: the same pass re-run after reset() allocates no new heap.
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(PlacementArena, GrowsBeyondFirstChunk) {
  PlacementArena arena;
  // Far more than the 64 KiB first chunk; spans several doubling chunks.
  char* big = arena.alloc<char>(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 'x';
  big[(1 << 20) - 1] = 'y';
  EXPECT_GE(arena.reserved_bytes(), static_cast<std::size_t>(1 << 20));
}

TEST(ArenaVector, PushBackGrowthPreservesContents) {
  PlacementArena arena;
  ArenaVector<int> v(arena);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 1000; ++i) v.push_back(i);  // many regrowths
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);

  const std::span<const int> view = v;
  EXPECT_EQ(view.size(), 1000u);
  EXPECT_EQ(std::accumulate(view.begin(), view.end(), 0), 999 * 1000 / 2);
}

TEST(ArenaVector, AssignAndClear) {
  PlacementArena arena;
  ArenaVector<char> v(arena);
  v.assign(64, 0);
  ASSERT_EQ(v.size(), 64u);
  for (const char c : v) EXPECT_EQ(c, 0);
  v[5] = 1;
  v.clear();
  EXPECT_TRUE(v.empty());
  v.assign(8, 2);
  ASSERT_EQ(v.size(), 8u);
  for (const char c : v) EXPECT_EQ(c, 2);
}

// --- Scheduler-level differential -----------------------------------------

struct Inputs {
  Workload workload;
  FailureTrace trace;
};

Inputs small_inputs(int num_jobs, int nodes, std::uint64_t seed) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = num_jobs;
  Workload w = generate_workload(model, seed);
  w = rescale_sizes(w, nodes);
  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  FailureModel fm = FailureModel::bluegene_l(60, span);
  fm.num_nodes = nodes;
  return Inputs{std::move(w), generate_failures(fm, seed ^ 0x5bd1e995)};
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.job_kills, b.job_kills);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.starts_on_flagged, b.starts_on_flagged);
  EXPECT_EQ(a.avoidable_kills, b.avoidable_kills);
  // Bitwise equality: same decisions means the same arithmetic in the same
  // order, not merely close answers.
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.avg_response, b.avg_response);
  EXPECT_EQ(a.avg_bounded_slowdown, b.avg_bounded_slowdown);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.unused, b.unused);
  EXPECT_EQ(a.lost, b.lost);
}

TEST(ArenaScratch, SimulationIdenticalWithAndWithoutArena) {
  const Inputs in = small_inputs(350, 128, 97);
  for (const SchedulerKind kind :
       {SchedulerKind::kKrevat, SchedulerKind::kBalancing,
        SchedulerKind::kTieBreak}) {
    SimConfig with_arena;
    with_arena.scheduler = kind;
    with_arena.alpha = 0.1;
    SimConfig without_arena = with_arena;
    without_arena.sched.arena_scratch = false;

    const SimResult a = run_simulation(in.workload, in.trace, with_arena);
    const SimResult b = run_simulation(in.workload, in.trace, without_arena);
    expect_identical(a, b);
  }
}

TEST(ArenaScratch, IdenticalAtBlockCatalogScale) {
  // The scale-up configuration in miniature: 4 096 nodes, block catalog.
  const int nodes = 16 * 16 * 16;
  const Inputs in = small_inputs(200, nodes, 1234);
  SimConfig with_arena;
  with_arena.dims = Dims{16, 16, 16};
  with_arena.catalog.mode = CatalogOptions::Mode::kBlocks;
  with_arena.catalog.min_block = 16;
  with_arena.scheduler = SchedulerKind::kBalancing;
  with_arena.alpha = 0.1;
  SimConfig without_arena = with_arena;
  without_arena.sched.arena_scratch = false;

  expect_identical(run_simulation(in.workload, in.trace, with_arena),
                   run_simulation(in.workload, in.trace, without_arena));
}

}  // namespace
}  // namespace bgl
