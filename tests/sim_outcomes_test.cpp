// Per-job outcome invariants on a realistic run: timeline ordering, exact
// final-run durations, and consistency between per-job and aggregate
// counters.
#include <gtest/gtest.h>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "workload/synthetic.hpp"

namespace bgl {
namespace {

class OutcomeInvariants : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(OutcomeInvariants, HoldForEveryJob) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 400;
  Workload w = generate_workload(model, 77);
  w = rescale_sizes(w, 128);

  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  const FailureTrace trace = generate_failures(
      FailureModel::bluegene_l(static_cast<std::size_t>(10.0 * span / 86400.0), span),
      13);

  SimConfig config;
  config.scheduler = GetParam();
  config.alpha = 0.5;
  config.collect_outcomes = true;
  const SimResult r = run_simulation(w, trace, config);

  ASSERT_EQ(r.outcomes.size(), w.jobs.size());
  long long total_restarts = 0;
  double recomputed_wait = 0.0;
  double recomputed_response = 0.0;
  double recomputed_slowdown = 0.0;
  for (const JobOutcome& o : r.outcomes) {
    EXPECT_GE(o.first_start, o.arrival);
    EXPECT_GE(o.last_start, o.first_start);
    // Checkpointing is off: the final (successful) run computes the full
    // runtime in one stretch.
    EXPECT_NEAR(o.finish - o.last_start, o.runtime, 1e-6);
    EXPECT_GE(o.restarts, 0);
    if (o.restarts == 0) EXPECT_DOUBLE_EQ(o.first_start, o.last_start);
    total_restarts += o.restarts;
    recomputed_wait += o.wait();
    recomputed_response += o.response();
    recomputed_slowdown += bounded_slowdown(o, config.metrics);
  }
  EXPECT_EQ(static_cast<std::size_t>(total_restarts), r.job_kills);
  const double n = static_cast<double>(r.outcomes.size());
  EXPECT_NEAR(recomputed_wait / n, r.avg_wait, 1e-6);
  EXPECT_NEAR(recomputed_response / n, r.avg_response, 1e-6);
  EXPECT_NEAR(recomputed_slowdown / n, r.avg_bounded_slowdown, 1e-6);

  // Span consistency: every job finished within [min arrival, span end].
  double max_finish = 0.0;
  double min_arrival = r.outcomes.front().arrival;
  for (const JobOutcome& o : r.outcomes) {
    max_finish = std::max(max_finish, o.finish);
    min_arrival = std::min(min_arrival, o.arrival);
  }
  EXPECT_NEAR(r.span, max_finish - min_arrival, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, OutcomeInvariants,
                         ::testing::Values(SchedulerKind::kKrevat,
                                           SchedulerKind::kBalancing,
                                           SchedulerKind::kTieBreak));

TEST(OutcomeInvariants, CheckpointedFinalRunIsShorter) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 200;
  Workload w = generate_workload(model, 5);
  w = rescale_sizes(w, 128);
  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  const FailureTrace trace = generate_failures(
      FailureModel::bluegene_l(static_cast<std::size_t>(15.0 * span / 86400.0), span),
      3);

  SimConfig config;
  config.scheduler = SchedulerKind::kKrevat;
  config.collect_outcomes = true;
  config.ckpt.enabled = true;
  config.ckpt.interval = 1800.0;
  config.ckpt.overhead = 30.0;
  const SimResult r = run_simulation(w, trace, config);

  for (const JobOutcome& o : r.outcomes) {
    // The final run never computes more than the full runtime plus all
    // checkpoint overhead, and with salvaged progress it may be shorter.
    const double final_run = o.finish - o.last_start;
    const double max_wall = walltime_for_work(o.runtime, config.ckpt) +
                            config.ckpt.restart_overhead;
    EXPECT_LE(final_run, max_wall + 1e-6);
    EXPECT_GT(final_run, 0.0);
  }
  EXPECT_GT(r.checkpoints_taken, 0u);
}

}  // namespace
}  // namespace bgl
