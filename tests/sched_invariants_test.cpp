// Property tests: on randomized torus states and queues, every scheduler
// decision must satisfy the structural invariants of §3.3 — no overlap, no
// double starts, FCFS integrity, migration size preservation — regardless
// of policy, predictor quality, or configuration.
#include <gtest/gtest.h>

#include <set>

#include "failure/generator.hpp"
#include "sched/scheduler.hpp"
#include "sim/driver.hpp"  // SchedulerKind
#include "util/rng.hpp"

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(kBgl);
  return instance;
}

struct Scenario {
  std::vector<WaitingJob> queue;
  std::vector<RunningJob> running;
  NodeSet occupied{128};
  double now = 1000.0;
};

/// Build a random consistent scenario: some running jobs on disjoint
/// partitions, some waiting jobs with valid alloc sizes.
Scenario random_scenario(Rng& rng) {
  Scenario sc;
  // Running jobs: repeatedly pick a random free entry.
  const int num_running = static_cast<int>(rng.uniform_int(0, 6));
  std::uint64_t next_id = 1;
  for (int i = 0; i < num_running; ++i) {
    const int size = catalog().allocatable_size(
        static_cast<int>(rng.uniform_int(1, 64)));
    std::vector<int> free;
    catalog().free_entries_of_size(sc.occupied, size, free);
    if (free.empty()) continue;
    const int entry = free[static_cast<std::size_t>(
        rng.uniform_int(0, free.size() - 1))];
    sc.occupied |= catalog().entry(entry).mask;
    sc.running.push_back(RunningJob{next_id++, entry,
                                    sc.now + rng.uniform(60.0, 7200.0)});
  }
  const int num_waiting = static_cast<int>(rng.uniform_int(1, 10));
  for (int i = 0; i < num_waiting; ++i) {
    const int requested = static_cast<int>(rng.uniform_int(1, 128));
    const int alloc = catalog().allocatable_size(requested);
    sc.queue.push_back(WaitingJob{next_id++, requested, alloc,
                                  rng.uniform(30.0, 36000.0)});
  }
  return sc;
}

struct InvariantCase {
  SchedulerKind kind;
  double alpha;
  BackfillMode backfill;
  bool migration;
  std::uint64_t seed;
};

class SchedulerInvariants : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(SchedulerInvariants, HoldOnRandomScenarios) {
  const InvariantCase param = GetParam();
  Rng rng(param.seed);

  FailureModel fm = FailureModel::bluegene_l(300, 30.0 * 86400.0);
  const FailureTrace trace = generate_failures(fm, param.seed);

  std::unique_ptr<FaultPredictor> predictor;
  switch (param.kind) {
    case SchedulerKind::kKrevat:
      predictor = std::make_unique<NullPredictor>(128);
      break;
    case SchedulerKind::kBalancing:
      predictor = std::make_unique<BalancingPredictor>(trace, param.alpha);
      break;
    case SchedulerKind::kTieBreak:
      predictor = std::make_unique<TieBreakPredictor>(trace, param.alpha);
      break;
  }
  SchedulerConfig config;
  config.backfill = param.backfill;
  config.migration = param.migration;
  std::unique_ptr<Scheduler> scheduler;
  switch (param.kind) {
    case SchedulerKind::kKrevat:
      scheduler = make_krevat_scheduler(catalog(), *predictor, config);
      break;
    case SchedulerKind::kBalancing:
      scheduler = make_balancing_scheduler(catalog(), *predictor, config);
      break;
    case SchedulerKind::kTieBreak:
      scheduler = make_tiebreak_scheduler(catalog(), *predictor, config);
      break;
  }

  for (int trial = 0; trial < 40; ++trial) {
    const Scenario sc = random_scenario(rng);
    const SchedulingDecision decision =
        scheduler->schedule(sc.now, sc.queue, sc.running, sc.occupied);

    // Determinism: identical inputs give identical decisions.
    const SchedulingDecision again =
        scheduler->schedule(sc.now, sc.queue, sc.running, sc.occupied);
    ASSERT_EQ(decision.starts.size(), again.starts.size());
    for (std::size_t i = 0; i < decision.starts.size(); ++i) {
      EXPECT_EQ(decision.starts[i].id, again.starts[i].id);
      EXPECT_EQ(decision.starts[i].entry_index, again.starts[i].entry_index);
    }

    // Apply migrations to compute the post-migration running masks.
    std::vector<int> entries_after;
    for (const RunningJob& r : sc.running) entries_after.push_back(r.entry_index);
    std::set<std::uint64_t> running_ids;
    for (const RunningJob& r : sc.running) running_ids.insert(r.id);
    for (const Migration& m : decision.migrations) {
      EXPECT_TRUE(running_ids.count(m.id)) << "migration of non-running job";
      EXPECT_EQ(catalog().entry(m.from_entry).size, catalog().entry(m.to_entry).size)
          << "migration changed partition size";
      for (std::size_t i = 0; i < sc.running.size(); ++i) {
        if (sc.running[i].id == m.id) {
          EXPECT_EQ(entries_after[i], m.from_entry) << "stale migration source";
          entries_after[i] = m.to_entry;
        }
      }
    }

    // Post-migration running partitions must be pairwise disjoint.
    NodeSet occ_after(128);
    for (const int entry : entries_after) {
      EXPECT_FALSE(catalog().entry(entry).mask.intersects(occ_after));
      occ_after |= catalog().entry(entry).mask;
    }

    // Starts: unique waiting ids, allocation size honoured, disjoint from
    // everything placed so far.
    std::set<std::uint64_t> started;
    std::set<std::uint64_t> waiting_ids;
    for (const WaitingJob& w : sc.queue) waiting_ids.insert(w.id);
    for (const Start& s : decision.starts) {
      EXPECT_TRUE(waiting_ids.count(s.id)) << "start of unknown job";
      EXPECT_TRUE(started.insert(s.id).second) << "job started twice";
      const auto& entry = catalog().entry(s.entry_index);
      const WaitingJob* job = nullptr;
      for (const WaitingJob& w : sc.queue) {
        if (w.id == s.id) job = &w;
      }
      ASSERT_NE(job, nullptr);
      EXPECT_EQ(entry.size, job->alloc_size);
      EXPECT_FALSE(entry.mask.intersects(occ_after)) << "overlapping start";
      occ_after |= entry.mask;
    }

    // FCFS integrity without backfill: started ids form a queue prefix.
    if (param.backfill == BackfillMode::kNone) {
      for (std::size_t i = 0; i < decision.starts.size(); ++i) {
        EXPECT_EQ(decision.starts[i].id, sc.queue[i].id)
            << "non-prefix start without backfill";
      }
    }

    // The head job must start whenever it fits under the original occupancy.
    if (!decision.starts.empty() || true) {
      std::vector<int> head_candidates;
      catalog().free_entries_of_size(sc.occupied, sc.queue.front().alloc_size,
                                     head_candidates);
      if (!head_candidates.empty()) {
        ASSERT_FALSE(decision.starts.empty()) << "placeable head job not started";
        EXPECT_EQ(decision.starts.front().id, sc.queue.front().id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, SchedulerInvariants,
    ::testing::Values(
        InvariantCase{SchedulerKind::kKrevat, 0.0, BackfillMode::kEasy, true, 1},
        InvariantCase{SchedulerKind::kKrevat, 0.0, BackfillMode::kNone, false, 2},
        InvariantCase{SchedulerKind::kKrevat, 0.0, BackfillMode::kConservative, false, 3},
        InvariantCase{SchedulerKind::kKrevat, 0.0, BackfillMode::kNone, true, 4},
        InvariantCase{SchedulerKind::kBalancing, 0.1, BackfillMode::kEasy, true, 5},
        InvariantCase{SchedulerKind::kBalancing, 0.9, BackfillMode::kConservative, true, 6},
        InvariantCase{SchedulerKind::kBalancing, 0.5, BackfillMode::kNone, false, 7},
        InvariantCase{SchedulerKind::kTieBreak, 0.1, BackfillMode::kEasy, true, 8},
        InvariantCase{SchedulerKind::kTieBreak, 0.9, BackfillMode::kConservative, false, 9},
        InvariantCase{SchedulerKind::kTieBreak, 0.5, BackfillMode::kNone, true, 10}));

}  // namespace
}  // namespace bgl
