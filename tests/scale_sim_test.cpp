// End-to-end equivalence and observability of the scale-up machinery: the
// optimized engine (calendar event queue, pooled arena scratch, word-range
// scan kernels, bulk index deltas) must replay a trace decision-for-
// decision identically to the pre-optimization reference configuration;
// full-scale block-catalog traces must carry the new sim_begin fields and
// pass the strict auditor.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "failure/generator.hpp"
#include "obs/audit.hpp"
#include "obs/reader.hpp"
#include "obs/trace.hpp"
#include "sim/driver.hpp"
#include "workload/synthetic.hpp"

namespace bgl {
namespace {

struct Inputs {
  Workload workload;
  FailureTrace trace;
};

Inputs make_inputs(int num_jobs, int nodes, std::uint64_t seed) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = num_jobs;
  Workload w = generate_workload(model, seed);
  w = rescale_sizes(w, nodes);
  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  FailureModel fm = FailureModel::bluegene_l(80, span);
  fm.num_nodes = nodes;
  return Inputs{std::move(w), generate_failures(fm, seed ^ 0x5bd1e995)};
}

SimConfig scale_config() {
  SimConfig config;
  config.dims = Dims{16, 16, 16};  // 4 096 nodes: full machine in miniature
  config.catalog.mode = CatalogOptions::Mode::kBlocks;
  config.catalog.min_block = 16;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.1;
  return config;
}

// Every optimization this pass introduced, toggled off together — the
// perf gate's reference configuration — must change nothing observable.
TEST(ScaleEquivalence, OptimizedAndReferenceEnginesMatchExactly) {
  const Inputs in = make_inputs(250, 16 * 16 * 16, 4242);

  const SimConfig optimized = scale_config();
  SimConfig reference = scale_config();
  reference.event_queue = EventQueueKind::kHeap;
  reference.sched.arena_scratch = false;
  reference.catalog.full_width_scans = true;

  std::ostringstream opt_trace, ref_trace;
  obs::TraceSink opt_sink(opt_trace), ref_sink(ref_trace);
  SimConfig a = optimized, b = reference;
  a.obs.trace = &opt_sink;
  b.obs.trace = &ref_sink;
  const SimResult ra = run_simulation(in.workload, in.trace, a);
  const SimResult rb = run_simulation(in.workload, in.trace, b);

  EXPECT_EQ(ra.jobs_completed, rb.jobs_completed);
  EXPECT_EQ(ra.avg_wait, rb.avg_wait);
  EXPECT_EQ(ra.utilization, rb.utilization);

  // Byte-identical traces apart from the sim_begin configuration fields
  // (the reference announces its non-default queue/scan knobs) and host
  // wall-clock stamps, which we strip line by line.
  auto strip = [](const std::string& text) {
    std::istringstream lines(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(lines, line)) {
      const auto wall = line.find("\"wall_us\":");
      if (wall != std::string::npos) {
        const auto end = line.find_first_of(",}", wall + 10);
        line.erase(wall, end - wall);
      }
      if (line.find("\"type\":\"sim_begin\"") != std::string::npos) continue;
      out << line << '\n';
    }
    return out.str();
  };
  EXPECT_EQ(strip(opt_trace.str()), strip(ref_trace.str()));
}

TEST(ScaleTrace, SimBeginAnnouncesNonDefaultEngineConfig) {
  const Inputs in = make_inputs(40, 16 * 16 * 16, 7);

  std::ostringstream text;
  {
    obs::TraceSink sink(text);
    SimConfig config = scale_config();
    config.event_queue = EventQueueKind::kHeap;
    config.obs.trace = &sink;
    run_simulation(in.workload, in.trace, config);
  }
  std::istringstream stream(text.str());
  obs::TraceReader reader(stream);
  obs::TraceRecord record;
  ASSERT_TRUE(reader.next(record));
  const obs::SimBeginEvent begin = obs::SimBeginEvent::from(record);
  EXPECT_EQ(begin.catalog, "blocks");
  EXPECT_EQ(begin.min_block, 16);
  EXPECT_EQ(begin.event_queue, "heap");
}

TEST(ScaleTrace, SimBeginOmitsDefaultEngineConfig) {
  // Default engine (boxes catalog, calendar queue) at paper scale: the new
  // fields must be absent so pre-existing traces stay byte-identical.
  const Inputs in = make_inputs(40, 128, 7);
  std::ostringstream text;
  {
    obs::TraceSink sink(text);
    SimConfig config;
    config.obs.trace = &sink;
    run_simulation(in.workload, in.trace, config);
  }
  const std::string first = text.str().substr(0, text.str().find('\n'));
  EXPECT_EQ(first.find("\"catalog\""), std::string::npos);
  EXPECT_EQ(first.find("\"event_queue\""), std::string::npos);
  std::istringstream stream2(text.str());
  obs::TraceReader reader(stream2);
  obs::TraceRecord record;
  ASSERT_TRUE(reader.next(record));
  const obs::SimBeginEvent begin = obs::SimBeginEvent::from(record);
  EXPECT_EQ(begin.catalog, "");
  EXPECT_EQ(begin.min_block, 0);
  EXPECT_EQ(begin.event_queue, "");
}

TEST(ScaleAudit, BlockCatalogTracePassesStrictAudit) {
  // The auditor reconstructs a block catalog of any volume (the node cap
  // applies to boxes mode only), so a full-scale trace stays fully
  // checkable: lifecycle, partition overlap, metric re-derivation.
  const Inputs in = make_inputs(120, 16 * 16 * 16, 99);
  std::ostringstream text;
  {
    obs::TraceSink sink(text);
    SimConfig config = scale_config();
    config.obs.trace = &sink;
    config.snapshot_interval = 43200.0;
    run_simulation(in.workload, in.trace, config);
  }
  obs::AuditOptions options;
  options.strict = true;
  std::istringstream stream(text.str());
  const obs::AuditReport report = obs::audit_trace(stream, options);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.size() << " violations, first: "
      << (report.violations.empty() ? "" : report.violations.front().message);
  EXPECT_GT(report.events, 0u);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace bgl
