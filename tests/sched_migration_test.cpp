#include "sched/migration.hpp"

#include <gtest/gtest.h>

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(kBgl);
  return instance;
}

int entry_of_box(const Box& box) {
  const Box canon = canonicalize(kBgl, box);
  for (int i = 0; i < catalog().num_entries(); ++i) {
    if (catalog().entry(i).box == canon) return i;
  }
  return -1;
}

TEST(Migration, CompactionFreesSpaceForHead) {
  // Two 4x4x2 slabs placed at z = 0 and z = 4 fragment the torus into two
  // 4x4x2 holes; a 4x4x4 (64-node) job cannot fit, but re-packing the slabs
  // adjacently frees a contiguous half machine.
  const int a = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 2}});
  const int b = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 2}});
  NodeSet occ = catalog().entry(a).mask;
  occ |= catalog().entry(b).mask;
  ASSERT_FALSE(catalog().has_free_of_size(occ, 64));

  const std::vector<RunningJob> running = {RunningJob{1, a, 100.0},
                                           RunningJob{2, b, 200.0}};
  const auto repack = try_repack(catalog(), running, 64);
  ASSERT_TRUE(repack.has_value());
  EXPECT_TRUE(catalog().has_free_of_size(repack->occupied_after, 64));
  EXPECT_EQ(repack->running_after.size(), 2u);
  // Total occupancy conserved.
  EXPECT_EQ(repack->occupied_after.count(), 64);
  // At least one job moved.
  EXPECT_FALSE(repack->migrations.empty());
}

TEST(Migration, MigrationsOnlyListMovedJobs) {
  const int a = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 2}});
  const int b = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 2}});
  const std::vector<RunningJob> running = {RunningJob{1, a, 100.0},
                                           RunningJob{2, b, 200.0}};
  const auto repack = try_repack(catalog(), running, 64);
  ASSERT_TRUE(repack.has_value());
  for (const Migration& m : repack->migrations) {
    EXPECT_NE(m.from_entry, m.to_entry);
    // Sizes preserved.
    EXPECT_EQ(catalog().entry(m.from_entry).size, catalog().entry(m.to_entry).size);
  }
}

TEST(Migration, NoOverlapAfterRepack) {
  const int a = entry_of_box(Box{Coord{0, 0, 1}, Triple{4, 4, 2}});
  const int b = entry_of_box(Box{Coord{0, 0, 5}, Triple{4, 4, 2}});
  const int c = entry_of_box(Box{Coord{0, 0, 3}, Triple{4, 2, 1}});
  const std::vector<RunningJob> running = {
      RunningJob{1, a, 10.0}, RunningJob{2, b, 20.0}, RunningJob{3, c, 30.0}};
  const auto repack = try_repack(catalog(), running, 64);
  if (!repack) GTEST_SKIP() << "greedy packing failed for this layout";
  int total = 0;
  NodeSet unioned(128);
  for (const RunningJob& r : repack->running_after) {
    const NodeSet& mask = catalog().entry(r.entry_index).mask;
    EXPECT_FALSE(unioned.intersects(mask));
    unioned |= mask;
    total += catalog().entry(r.entry_index).size;
  }
  EXPECT_EQ(repack->occupied_after, unioned);
  EXPECT_EQ(total, 64 + 8);
}

TEST(Migration, FailsWhenHeadCannotFitEvenCompacted) {
  // 96 busy nodes: even perfectly packed, a 64-node partition cannot fit.
  const int big = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 6}});
  const std::vector<RunningJob> running = {RunningJob{1, big, 100.0}};
  EXPECT_FALSE(try_repack(catalog(), running, 64).has_value());
}

TEST(Migration, ObstaclesSurviveRepackAndAreNeverPackedOver) {
  // A down node in the middle of the machine must neither be packed over
  // nor dropped from the post-compaction occupancy (dropping it is how a
  // later "free the node" event desynchronizes occupancy bookkeeping).
  const int a = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 2}});
  const int b = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 2}});
  const std::vector<RunningJob> running = {RunningJob{1, a, 100.0},
                                           RunningJob{2, b, 200.0}};
  NodeSet down(128);
  down.set(node_id(kBgl, Coord{0, 0, 2}));
  const auto repack = try_repack(catalog(), running, 32, &down);
  ASSERT_TRUE(repack.has_value());
  // The obstacle is still occupied afterwards...
  EXPECT_TRUE(repack->occupied_after.test(node_id(kBgl, Coord{0, 0, 2})));
  // ...no re-placed job covers it...
  for (const RunningJob& r : repack->running_after) {
    EXPECT_FALSE(catalog().entry(r.entry_index).mask.test(
        node_id(kBgl, Coord{0, 0, 2})));
  }
  // ...and the occupancy is exactly jobs + obstacle.
  EXPECT_EQ(repack->occupied_after.count(), 64 + 1);

  // With the obstacle the full half-machine is out of reach: 64 must fail
  // even though the same layout without obstacles compacts (see
  // CompactionFreesSpaceForHead).
  EXPECT_FALSE(try_repack(catalog(), running, 64, &down).has_value());
}

TEST(Migration, EmptyRunningSetTrivial) {
  const auto repack = try_repack(catalog(), {}, 128);
  ASSERT_TRUE(repack.has_value());
  EXPECT_TRUE(repack->migrations.empty());
  EXPECT_EQ(repack->occupied_after.count(), 0);
}

}  // namespace
}  // namespace bgl
