// Property: canonical (shape, base) descriptions are in bijection with
// partition node sets. The PartitionCatalog relies on this to skip any
// dedup pass — two canonical boxes never cover the same node set, and every
// wrapped box equals its canonical form's node set.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "torus/catalog.hpp"
#include "torus/partition.hpp"

namespace bgl {
namespace {

class CanonicalBijection : public ::testing::TestWithParam<Dims> {};

TEST_P(CanonicalBijection, DistinctCanonicalBoxesHaveDistinctNodeSets) {
  const Dims dims = GetParam();
  std::map<std::vector<int>, Box> seen;  // node ids -> first canonical box
  int total = 0;
  for (int sx = 1; sx <= dims.x; ++sx) {
    for (int sy = 1; sy <= dims.y; ++sy) {
      for (int sz = 1; sz <= dims.z; ++sz) {
        const int bx_max = sx == dims.x ? 1 : dims.x;
        const int by_max = sy == dims.y ? 1 : dims.y;
        const int bz_max = sz == dims.z ? 1 : dims.z;
        for (int bx = 0; bx < bx_max; ++bx) {
          for (int by = 0; by < by_max; ++by) {
            for (int bz = 0; bz < bz_max; ++bz) {
              const Box box{Coord{bx, by, bz}, Triple{sx, sy, sz}};
              std::vector<int> ids;
              for (const NodeId id : box_nodes(dims, box)) ids.push_back(id);
              const auto [it, inserted] = seen.emplace(ids, box);
              EXPECT_TRUE(inserted)
                  << to_string(box) << " collides with " << to_string(it->second)
                  << " on " << to_string(dims);
              ++total;
            }
          }
        }
      }
    }
  }
  PartitionCatalog catalog(dims);
  EXPECT_EQ(catalog.num_entries(), total);
}

TEST_P(CanonicalBijection, EveryWrappedBoxEqualsItsCanonicalForm) {
  const Dims dims = GetParam();
  // All boxes including non-canonical bases.
  for (int sx = 1; sx <= dims.x; ++sx) {
    for (int sy = 1; sy <= dims.y; ++sy) {
      for (int sz = 1; sz <= dims.z; ++sz) {
        for (int bx = 0; bx < dims.x; ++bx) {
          for (int by = 0; by < dims.y; ++by) {
            for (int bz = 0; bz < dims.z; ++bz) {
              const Box box{Coord{bx, by, bz}, Triple{sx, sy, sz}};
              const Box canon = canonicalize(dims, box);
              ASSERT_EQ(box_mask(dims, box), box_mask(dims, canon))
                  << to_string(box) << " vs canonical " << to_string(canon);
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallTori, CanonicalBijection,
                         ::testing::Values(Dims{2, 2, 2}, Dims{3, 3, 4},
                                           Dims{1, 4, 4}, Dims{2, 3, 5},
                                           Dims{4, 4, 8}));

}  // namespace
}  // namespace bgl
