#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/figures.hpp"
#include "exp/runner.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace bgl::exp {
namespace {

SyntheticModel tiny_model() {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 60;
  return model;
}

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.models = {{"SDSC", tiny_model()}};
  spec.load_scales = {1.0, 1.2};
  spec.failure_budgets = {0, 1000};
  spec.alphas = {0.0, 0.5};
  return spec;
}

TEST(SweepSpec, ExpandsRowMajorWithConfigsFastest) {
  SweepSpec spec = tiny_spec();
  SimConfig mesh;
  mesh.topology = Topology::kMesh;
  spec.configs = {{"torus", SimConfig{}, std::nullopt},
                  {"mesh", mesh, std::nullopt}};

  const std::vector<Cell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), spec.num_cells());
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);  // loads x budgets x alphas x cfgs

  // configs fastest, then alphas, then failure budgets, then loads.
  EXPECT_EQ(cells[0].config->label, "torus");
  EXPECT_EQ(cells[1].config->label, "mesh");
  EXPECT_DOUBLE_EQ(cells[0].alpha, 0.0);
  EXPECT_DOUBLE_EQ(cells[2].alpha, 0.5);
  EXPECT_EQ(cells[0].nominal_failures, 0u);
  EXPECT_EQ(cells[4].nominal_failures, 1000u);
  EXPECT_DOUBLE_EQ(cells[0].load_scale, 1.0);
  EXPECT_DOUBLE_EQ(cells[8].load_scale, 1.2);
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
}

TEST(SweepSpec, EmptyAxesIterateOnceWithDefaults) {
  SweepSpec spec;
  spec.name = "defaults";
  spec.models = {{"LLNL", SyntheticModel::llnl()}};
  const std::vector<Cell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].load_scale, 1.0);
  EXPECT_EQ(cells[0].nominal_failures, paper_failure_count(SyntheticModel::llnl()));
  EXPECT_EQ(cells[0].scheduler, SchedulerKind::kBalancing);
  EXPECT_DOUBLE_EQ(cells[0].alpha, 0.0);
  ASSERT_NE(cells[0].config, nullptr);
}

TEST(SweepSpec, ConfigAlphaOverridesAxis) {
  SweepSpec spec;
  spec.name = "override";
  spec.models = {{"SDSC", tiny_model()}};
  spec.alphas = {0.2};
  spec.configs = {{"axis", SimConfig{}, std::nullopt},
                  {"pinned", SimConfig{}, 0.9}};
  const std::vector<Cell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].alpha, 0.2);
  EXPECT_DOUBLE_EQ(cells[1].alpha, 0.9);
}

TEST(SweepSpec, EmptyModelAxisThrows) {
  SweepSpec spec;
  spec.name = "nomodels";
  EXPECT_THROW(expand_cells(spec), ConfigError);
}

TEST(SweepSeeds, SharedSchemeMatchesHistoricalFormulas) {
  SweepSpec spec = tiny_spec();
  for (const std::size_t cell : {std::size_t{0}, std::size_t{7}}) {
    for (const int repeat : {0, 2}) {
      const RepeatSeeds s = derive_seeds(spec, cell, repeat);
      const auto r = static_cast<std::uint64_t>(repeat);
      EXPECT_EQ(s.workload, 1000 + 17 * r);
      EXPECT_EQ(s.trace, 500 + 29 * r);
      EXPECT_EQ(s.sim, s.trace ^ 0x7365656473ULL);
    }
  }
}

TEST(SweepSeeds, PerCellSchemeDecorrelatesCells) {
  SweepSpec spec = tiny_spec();
  spec.seed_scheme = SeedScheme::kPerCell;
  spec.base_seed = 42;
  const RepeatSeeds a = derive_seeds(spec, 0, 0);
  const RepeatSeeds b = derive_seeds(spec, 1, 0);
  const RepeatSeeds c = derive_seeds(spec, 0, 1);
  EXPECT_NE(a.workload, b.workload);
  EXPECT_NE(a.workload, c.workload);
  EXPECT_NE(a.workload, a.trace);
  // Deterministic: same inputs, same seeds.
  const RepeatSeeds a2 = derive_seeds(spec, 0, 0);
  EXPECT_EQ(a.workload, a2.workload);
  EXPECT_EQ(a.trace, a2.trace);
  EXPECT_EQ(a.sim, a2.sim);
}

TEST(SweepSeeds, MalformedBenchSeedsEnvThrows) {
  for (const char* bad : {"banana", "0", "-3", "2.5", ""}) {
    ASSERT_EQ(setenv("BGL_BENCH_SEEDS", bad, 1), 0);
    EXPECT_THROW(default_repeats_from_env(), ConfigError) << bad;
  }
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "4", 1), 0);
  EXPECT_EQ(default_repeats_from_env(), 4);
  unsetenv("BGL_BENCH_SEEDS");
  EXPECT_EQ(default_repeats_from_env(), 3);
}

// Drop the wall-clock metrics (scheduler decision latency) from a registry
// JSON dump. They measure real elapsed time, so no two runs — serial or
// parallel — ever agree on them; every simulation-derived metric must
// still match bit-for-bit.
std::string strip_timing(std::string json) {
  for (const char* key :
       {"\"sched.decision_ns\":", "\"avg_decision_us\":"}) {
    const auto start = json.find(key);
    if (start == std::string::npos) continue;
    auto end = json.find(',', start);
    if (end == std::string::npos) end = json.size() - 1;
    json.erase(start, end - start + 1);
  }
  const auto start = json.find("\"sched.decision_us\":{");
  if (start != std::string::npos) {
    auto end = json.find('}', start);  // histogram objects nest no braces
    if (end != std::string::npos && end + 1 < json.size() &&
        json[end + 1] == ',') {
      ++end;
    }
    json.erase(start, end - start + 1);
  }
  return json;
}

// The tentpole guarantee: a parallel run is indistinguishable from the
// serial reference — bit-equal cell metrics and identical merged
// counter/histogram dumps (modulo wall-clock timing), regardless of
// thread count.
TEST(SweepRunner, ParallelRunIsBitIdenticalToSerial) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);
  const SweepSpec spec = tiny_spec();

  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 8;
  const SweepResult a = SweepRunner().run(spec, serial);
  const SweepResult b = SweepRunner().run(spec, parallel);

  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    // Host-clock fields (wall time and the decision-latency quantile it
    // feeds) are the one legitimate run-to-run difference; everything else
    // must be bit-equal, not tolerance-equal — the reduction order is fixed.
    PointSummary pa = a.cell(i);
    PointSummary pb = b.cell(i);
    pa.wall_seconds = pb.wall_seconds = 0.0;
    pa.decision_p99_us = pb.decision_p99_us = 0.0;
    EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(PointSummary)), 0) << "cell " << i;
  }

  std::ostringstream ca, cb, ha, hb;
  a.counters().write_json(ca);
  b.counters().write_json(cb);
  a.histograms().write_json(ha);
  b.histograms().write_json(hb);
  EXPECT_EQ(strip_timing(ca.str()), strip_timing(cb.str()));
  EXPECT_EQ(strip_timing(ha.str()), strip_timing(hb.str()));
  EXPECT_NE(ca.str(), "{}");  // the merge actually carried data
  unsetenv("BGL_BENCH_SEEDS");
}

// The merged phase tree (snapshot content for every bench stats.json) is
// deterministic across thread counts in everything but wall time: same
// nodes, same paths, same span counts, no drops. Wall totals are host
// noise, so they are excluded — the tree *shape* is the contract.
TEST(SweepRunner, PhaseTreeCountsAreThreadCountInvariant) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);
  const SweepSpec spec = tiny_spec();

  const auto counts_by_path = [](const SweepResult& r) {
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < r.profiler().num_nodes(); ++i) {
      const obs::PhaseProfiler::NodeView v = r.profiler().node_view(i);
      out[v.path] = v.count;
    }
    return out;
  };

  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 8;
  const SweepResult a = SweepRunner().run(spec, serial);
  const SweepResult b = SweepRunner().run(spec, parallel);

  EXPECT_EQ(a.profiler().dropped_spans(), 0u);
  EXPECT_EQ(b.profiler().dropped_spans(), 0u);
  EXPECT_FALSE(a.profiler().empty());
  EXPECT_EQ(counts_by_path(a), counts_by_path(b));
  // The root of every simulation's tree is the DES event loop.
  EXPECT_GT(counts_by_path(a).count("des.event"), 0u);
  unsetenv("BGL_BENCH_SEEDS");
}

// End-to-end through the figure layer: the CSV files a figure writes are
// byte-identical across thread counts.
TEST(SweepRunner, FigureCsvBytesAreThreadCountInvariant) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);

  bench::FigureDef fig;
  fig.name = "tiny_fig";
  fig.header = "tiny figure";
  fig.spec = tiny_spec();
  fig.render = [](const SweepResult& r) {
    Table table({"cell", "slowdown", "utilized"});
    for (std::size_t i = 0; i < r.num_cells(); ++i) {
      table.add_row()
          .add(static_cast<long long>(i))
          .add(r.cell(i).slowdown, 3)
          .add(r.cell(i).utilization, 3);
    }
    bench::FigureOutput out;
    out.parts.push_back({"tiny_fig", "", std::move(table)});
    return out;
  };

  auto run_at = [&fig](int threads, const std::string& dir) {
    bench::FigureRunOptions options;
    options.threads = threads;
    options.out_dir = dir;
    options.progress = false;
    std::ostringstream sink;
    bench::run_figure(fig, options, sink);
    std::ifstream in(dir + "/tiny_fig.csv");
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
  };

  const std::string serial = run_at(1, testing::TempDir() + "/sweep_t1");
  const std::string parallel = run_at(8, testing::TempDir() + "/sweep_t8");
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  unsetenv("BGL_BENCH_SEEDS");
}

TEST(SweepSpec, RepeatCapBoundsEnvironmentAndFloor) {
  SweepSpec spec;
  spec.repeat_floor = 5;
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "9", 1), 0);
  EXPECT_EQ(spec.repeats(), 9);
  spec.repeat_cap = 2;  // expensive scale benches pin one repeat
  EXPECT_EQ(spec.repeats(), 2);
  spec.repeat_cap = 0;  // uncapped again
  EXPECT_EQ(spec.repeats(), 9);
  unsetenv("BGL_BENCH_SEEDS");
  spec.repeat_cap = 2;
  EXPECT_EQ(spec.repeats(), 2);  // cap also bounds the floor
}

TEST(SweepRunner, ThroughputFieldsAreTotalsOverRepeats) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);
  SweepSpec spec = tiny_spec();
  spec.load_scales = {1.0};
  spec.failure_budgets = {100};
  spec.alphas = {0.1};

  const SweepResult result = SweepRunner().run(spec, RunOptions{});
  unsetenv("BGL_BENCH_SEEDS");

  ASSERT_EQ(result.num_cells(), 1u);
  const PointSummary& p = result.cell(0);
  ASSERT_EQ(p.seeds, 2);
  // jobs_completed totals both repeats of the tiny model's log.
  EXPECT_EQ(p.jobs_completed,
            2.0 * static_cast<double>(spec.models[0].model.num_jobs));
  EXPECT_GT(p.decisions, 0.0);
  EXPECT_GE(p.wall_seconds, 0.0);
  EXPECT_GE(p.decision_p99_us, 0.0);
  // Derived rates divide by total wall time (0 only on a sub-resolution run).
  if (p.wall_seconds > 0.0) {
    EXPECT_NEAR(p.jobs_per_sec(), p.jobs_completed / p.wall_seconds, 1e-9);
    EXPECT_NEAR(p.decisions_per_sec(), p.decisions / p.wall_seconds, 1e-9);
  } else {
    EXPECT_EQ(p.jobs_per_sec(), 0.0);
    EXPECT_EQ(p.decisions_per_sec(), 0.0);
  }
}

// --- algorithm axis (scheduler-portfolio dimension) ----------------------

TEST(SweepSpec, AlgorithmAxisExpandsBetweenSchedulersAndAlphas) {
  SweepSpec spec;
  spec.name = "algos";
  spec.models = {{"SDSC", tiny_model()}};
  spec.schedulers = {SchedulerKind::kKrevat, SchedulerKind::kBalancing};
  spec.algorithms = {SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
                     SchedAlgorithm::kConservative};
  spec.alphas = {0.0, 0.5};

  const std::vector<Cell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), spec.num_cells());
  ASSERT_EQ(cells.size(), 2u * 3u * 2u);  // schedulers x algorithms x alphas

  // Alphas vary fastest, then algorithms, then schedulers.
  ASSERT_TRUE(cells[0].algorithm.has_value());
  EXPECT_EQ(*cells[0].algorithm, SchedAlgorithm::kKrevat);
  EXPECT_EQ(*cells[2].algorithm, SchedAlgorithm::kEasy);
  EXPECT_EQ(*cells[4].algorithm, SchedAlgorithm::kConservative);
  EXPECT_EQ(cells[5].coord.algorithm, 2u);
  EXPECT_EQ(cells[6].scheduler, SchedulerKind::kBalancing);
  EXPECT_EQ(*cells[6].algorithm, SchedAlgorithm::kKrevat);
  EXPECT_EQ(cells[6].coord.algorithm, 0u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].coord.alpha, i % 2) << i;
    EXPECT_EQ(cells[i].coord.algorithm, (i / 2) % 3) << i;
    EXPECT_EQ(cells[i].coord.scheduler, i / 6) << i;
  }
}

TEST(SweepSpec, EmptyAlgorithmAxisPreservesConfigChoice) {
  // With no algorithms axis the cell carries no override: run_unit leaves
  // whatever SchedAlgorithm the ConfigCase proto pinned — the byte-safety
  // contract that let the axis land without perturbing existing figures.
  const std::vector<Cell> cells = expand_cells(tiny_spec());
  for (const Cell& cell : cells) EXPECT_FALSE(cell.algorithm.has_value());
}

TEST(SweepRunner, DegenerateAlgorithmAxisIsByteIdentical) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);
  SweepSpec base = tiny_spec();
  SweepSpec with_axis = tiny_spec();
  with_axis.algorithms = {SchedAlgorithm::kKrevat};

  const SweepResult a = SweepRunner().run(base, RunOptions{});
  const SweepResult b = SweepRunner().run(with_axis, RunOptions{});
  unsetenv("BGL_BENCH_SEEDS");

  ASSERT_EQ(a.num_cells(), b.num_cells());
  EXPECT_EQ(b.shape().algorithms, 1u);
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    PointSummary pa = a.cell(i);
    PointSummary pb = b.cell(i);
    pa.wall_seconds = pb.wall_seconds = 0.0;
    pa.decision_p99_us = pb.decision_p99_us = 0.0;
    EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(PointSummary)), 0) << "cell " << i;
  }
}

TEST(SweepRunner, AlgorithmAxisReachesTheScheduler) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);
  SweepSpec spec;
  spec.name = "algo-effect";
  SyntheticModel model = tiny_model();
  spec.models = {{"SDSC", model}};
  spec.load_scales = {1.4};  // oversubscribed: backfill choices matter
  spec.algorithms = {SchedAlgorithm::kKrevat, SchedAlgorithm::kConservative,
                     SchedAlgorithm::kEasyHoldback};
  spec.alphas = {0.1};

  const SweepResult result = SweepRunner().run(spec, RunOptions{});
  unsetenv("BGL_BENCH_SEEDS");

  ASSERT_EQ(result.num_cells(), 3u);
  EXPECT_EQ(result.shape().algorithms, 3u);
  // at() addresses the algorithm dimension directly.
  EXPECT_EQ(&result.at(0, 0, 0, 0, 1, 0, 0, 0), &result.cell(1));
  // The disciplines must actually produce different schedules somewhere:
  // identical grids would mean the axis never reached SchedulerConfig.
  bool any_difference = false;
  for (std::size_t gi = 1; gi < 3; ++gi) {
    const PointSummary& base = result.cell(0);
    const PointSummary& other = result.cell(gi);
    if (base.slowdown != other.slowdown || base.wait != other.wait ||
        base.utilization != other.utilization) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

// --- predictor axis (fault-prediction-model dimension) -------------------

TEST(SweepSpec, PredictorAxisExpandsBetweenAlphasAndConfigs) {
  SweepSpec spec;
  spec.name = "preds";
  spec.models = {{"SDSC", tiny_model()}};
  spec.alphas = {0.0, 0.5};
  spec.predictors = {PredictorModel::kPaper, PredictorModel::kHistory,
                     PredictorModel::kAdaptive};
  SimConfig mesh;
  mesh.topology = Topology::kMesh;
  spec.configs = {{"torus", SimConfig{}, std::nullopt},
                  {"mesh", mesh, std::nullopt}};

  const std::vector<Cell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), spec.num_cells());
  ASSERT_EQ(cells.size(), 2u * 3u * 2u);  // alphas x predictors x configs

  // Configs vary fastest, then predictors, then alphas.
  ASSERT_TRUE(cells[0].predictor.has_value());
  EXPECT_EQ(*cells[0].predictor, PredictorModel::kPaper);
  EXPECT_EQ(*cells[2].predictor, PredictorModel::kHistory);
  EXPECT_EQ(*cells[4].predictor, PredictorModel::kAdaptive);
  EXPECT_EQ(cells[1].config->label, "mesh");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].coord.config, i % 2) << i;
    EXPECT_EQ(cells[i].coord.predictor, (i / 2) % 3) << i;
    EXPECT_EQ(cells[i].coord.alpha, i / 6) << i;
  }
}

TEST(SweepSpec, EmptyPredictorAxisPreservesConfigChoice) {
  // No predictor axis -> no override: run_unit keeps whatever
  // PredictorModel the ConfigCase proto pinned, so every pre-axis sweep
  // stays byte-identical (same contract as the algorithm axis).
  const std::vector<Cell> cells = expand_cells(tiny_spec());
  for (const Cell& cell : cells) EXPECT_FALSE(cell.predictor.has_value());
}

TEST(SweepRunner, DegeneratePredictorAxisIsByteIdentical) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);
  SweepSpec base = tiny_spec();
  SweepSpec with_axis = tiny_spec();
  with_axis.predictors = {PredictorModel::kPaper};  // == the proto default

  const SweepResult a = SweepRunner().run(base, RunOptions{});
  const SweepResult b = SweepRunner().run(with_axis, RunOptions{});
  unsetenv("BGL_BENCH_SEEDS");

  ASSERT_EQ(a.num_cells(), b.num_cells());
  EXPECT_EQ(b.shape().predictors, 1u);
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    PointSummary pa = a.cell(i);
    PointSummary pb = b.cell(i);
    pa.wall_seconds = pb.wall_seconds = 0.0;
    pa.decision_p99_us = pb.decision_p99_us = 0.0;
    EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(PointSummary)), 0) << "cell " << i;
  }
}

TEST(SweepRunner, PredictorAxisReachesTheDriver) {
  ASSERT_EQ(setenv("BGL_BENCH_SEEDS", "2", 1), 0);
  SweepSpec spec;
  spec.name = "pred-effect";
  spec.models = {{"SDSC", tiny_model()}};
  spec.failure_budgets = {2000};  // dense faults: prediction choices matter
  spec.alphas = {0.9};
  spec.predictors = {PredictorModel::kNone, PredictorModel::kPerfect,
                     PredictorModel::kAdaptive};

  const SweepResult result = SweepRunner().run(spec, RunOptions{});
  unsetenv("BGL_BENCH_SEEDS");

  ASSERT_EQ(result.num_cells(), 3u);
  EXPECT_EQ(result.shape().predictors, 3u);
  // at() addresses the predictor dimension directly.
  EXPECT_EQ(&result.at(0, 0, 0, 0, 0, 0, 1, 0), &result.cell(1));
  // The models must actually produce different schedules somewhere:
  // identical grids would mean the axis never reached SimConfig.
  bool any_difference = false;
  for (std::size_t pi = 1; pi < 3; ++pi) {
    const PointSummary& base = result.cell(0);
    const PointSummary& other = result.cell(pi);
    if (base.slowdown != other.slowdown || base.wait != other.wait ||
        base.kills != other.kills) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace bgl::exp
