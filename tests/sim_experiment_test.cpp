#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/error.hpp"
#include "workload/analysis.hpp"
#include "workload/swf.hpp"

namespace bgl {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.workload.model = SyntheticModel::sdsc();
  spec.workload.model.num_jobs = 300;
  spec.failures.events = 100;
  spec.sim.scheduler = SchedulerKind::kBalancing;
  spec.sim.alpha = 0.1;
  return spec;
}

TEST(Experiment, PreparesRescaledWorkload) {
  ExperimentSpec spec = small_spec();
  spec.workload.model = SyntheticModel::llnl();  // 256-node machine
  spec.workload.model.num_jobs = 300;
  const ExperimentInputs inputs = prepare_inputs(spec);
  EXPECT_EQ(inputs.workload.machine_nodes, 128);
  for (const Job& j : inputs.workload.jobs) EXPECT_LE(j.size, 128);
  EXPECT_EQ(inputs.trace.size(), 100u);
  EXPECT_EQ(inputs.trace.num_nodes(), 128);
}

TEST(Experiment, LoadScaleAppliesToRuntimes) {
  ExperimentSpec base = small_spec();
  ExperimentSpec scaled = base;
  scaled.workload.load_scale = 1.2;
  const auto in_base = prepare_inputs(base);
  const auto in_scaled = prepare_inputs(scaled);
  ASSERT_EQ(in_base.workload.jobs.size(), in_scaled.workload.jobs.size());
  EXPECT_NEAR(in_scaled.workload.jobs[0].runtime,
              1.2 * in_base.workload.jobs[0].runtime, 1e-9);
}

TEST(Experiment, TraceCoversWorkloadSpan) {
  const ExperimentInputs inputs = prepare_inputs(small_spec());
  EXPECT_GE(inputs.trace.events().back().time, inputs.workload.arrival_span());
}

TEST(Experiment, RunProducesCompleteResult) {
  const SimResult r = run_experiment(small_spec());
  EXPECT_EQ(r.jobs_completed, 300u);
  EXPECT_NEAR(r.utilization + r.unused + r.lost, 1.0, 1e-9);
}

TEST(Experiment, DeterministicEndToEnd) {
  const SimResult a = run_experiment(small_spec());
  const SimResult b = run_experiment(small_spec());
  EXPECT_DOUBLE_EQ(a.avg_bounded_slowdown, b.avg_bounded_slowdown);
  EXPECT_EQ(a.job_kills, b.job_kills);
}

TEST(Experiment, PaperFailureCounts) {
  EXPECT_EQ(paper_failure_count(SyntheticModel::nasa()), 4000u);
  EXPECT_EQ(paper_failure_count(SyntheticModel::sdsc()), 4000u);
  EXPECT_EQ(paper_failure_count(SyntheticModel::llnl()), 1000u);
}

TEST(Experiment, JobScaleEnvShrinksModels) {
  ASSERT_EQ(setenv("BGL_JOB_SCALE", "0.5", 1), 0);
  SyntheticModel model = SyntheticModel::sdsc();
  const int before = model.num_jobs;
  const double scale = apply_job_scale_env(model);
  EXPECT_DOUBLE_EQ(scale, 0.5);
  EXPECT_EQ(model.num_jobs, before / 2);
  unsetenv("BGL_JOB_SCALE");
}

TEST(Experiment, MalformedJobScaleRejected) {
  // A silently ignored typo used to run the full-size log; malformed
  // values are now a hard error (garbage, NaN, inf, zero, negative).
  SyntheticModel model = SyntheticModel::sdsc();
  for (const char* bad : {"banana", "nan", "inf", "0", "-1", "1.5x", ""}) {
    ASSERT_EQ(setenv("BGL_JOB_SCALE", bad, 1), 0);
    EXPECT_THROW(apply_job_scale_env(model), ConfigError) << bad;
  }
  unsetenv("BGL_JOB_SCALE");
  EXPECT_EQ(model.num_jobs, SyntheticModel::sdsc().num_jobs);
}

TEST(Experiment, SwfOverrideIsUsed) {
  // Write a tiny SWF log and point the spec at it.
  Workload tiny;
  tiny.name = "tiny";
  tiny.machine_nodes = 128;
  tiny.jobs = {Job{1, 0.0, 60.0, 120.0, 8}, Job{2, 30.0, 90.0, 90.0, 16}};
  const std::string path = testing::TempDir() + "/bgl_tiny.swf";
  write_swf_file(path, tiny);

  ExperimentSpec spec = small_spec();
  spec.workload.swf_path = path;
  spec.failures.events = 0;
  const ExperimentInputs inputs = prepare_inputs(spec);
  EXPECT_EQ(inputs.workload.jobs.size(), 2u);
  const SimResult r = run_experiment(spec);
  EXPECT_EQ(r.jobs_completed, 2u);
}

TEST(Experiment, FailureCsvOverrideIsUsed) {
  const std::string path = testing::TempDir() + "/bgl_trace_override.csv";
  write_failure_csv(path, FailureTrace({{10.0, 2}, {20.0, 3}}, 128));
  ExperimentSpec spec = small_spec();
  spec.failures.csv_path = path;
  const ExperimentInputs inputs = prepare_inputs(spec);
  EXPECT_EQ(inputs.trace.size(), 2u);
}

}  // namespace
}  // namespace bgl
