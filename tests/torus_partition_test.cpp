#include "torus/partition.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

TEST(Partition, BoxNodesCountMatchesVolume) {
  const Box box{Coord{1, 2, 3}, Triple{2, 2, 4}};
  const auto nodes = box_nodes(kBgl, box);
  EXPECT_EQ(nodes.size(), 16u);
  // All unique.
  EXPECT_EQ(std::set<NodeId>(nodes.begin(), nodes.end()).size(), 16u);
}

TEST(Partition, BoxNodesWrapAround) {
  // Base at the far corner with extent 2 in every dimension wraps in all.
  const Box box{Coord{3, 3, 7}, Triple{2, 2, 2}};
  const auto nodes = box_nodes(kBgl, box);
  ASSERT_EQ(nodes.size(), 8u);
  // The wrapped corner (0,0,0) must be included.
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), node_id(kBgl, Coord{0, 0, 0})),
            nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), node_id(kBgl, Coord{3, 3, 7})),
            nodes.end());
}

TEST(Partition, BoxMaskMatchesNodes) {
  const Box box{Coord{0, 0, 0}, Triple{4, 4, 8}};
  const NodeSet mask = box_mask(kBgl, box);
  EXPECT_EQ(mask.count(), 128);
}

TEST(Partition, BoxFits) {
  EXPECT_TRUE(box_fits(kBgl, Box{Coord{0, 0, 0}, Triple{4, 4, 8}}));
  EXPECT_FALSE(box_fits(kBgl, Box{Coord{0, 0, 0}, Triple{5, 1, 1}}));
  EXPECT_FALSE(box_fits(kBgl, Box{Coord{4, 0, 0}, Triple{1, 1, 1}}));
  EXPECT_FALSE(box_fits(kBgl, Box{Coord{0, 0, 0}, Triple{0, 1, 1}}));
}

TEST(Partition, CanonicalizeFixesFullExtentBase) {
  const Box box{Coord{2, 3, 5}, Triple{4, 2, 8}};
  const Box canon = canonicalize(kBgl, box);
  EXPECT_EQ(canon.base.x, 0);   // full x extent
  EXPECT_EQ(canon.base.y, 3);   // partial extent keeps base
  EXPECT_EQ(canon.base.z, 0);   // full z extent
}

TEST(Partition, CanonicalFormPreservesNodeSet) {
  const Box box{Coord{2, 1, 5}, Triple{4, 2, 8}};
  const Box canon = canonicalize(kBgl, box);
  EXPECT_EQ(box_mask(kBgl, box), box_mask(kBgl, canon));
}

TEST(Partition, BoxContainsWithWrap) {
  const Box box{Coord{3, 0, 6}, Triple{2, 1, 3}};
  EXPECT_TRUE(box_contains(kBgl, box, Coord{3, 0, 6}));
  EXPECT_TRUE(box_contains(kBgl, box, Coord{0, 0, 0}));  // wrapped in x and z
  EXPECT_FALSE(box_contains(kBgl, box, Coord{1, 0, 0}));
  EXPECT_FALSE(box_contains(kBgl, box, Coord{3, 1, 6}));
}

TEST(Partition, BoxContainsAgreesWithBoxNodes) {
  const Box box{Coord{2, 3, 5}, Triple{3, 2, 4}};
  const auto nodes = box_nodes(kBgl, box);
  const std::set<NodeId> node_set(nodes.begin(), nodes.end());
  for (int id = 0; id < kBgl.volume(); ++id) {
    const bool in_list = node_set.count(static_cast<NodeId>(id)) > 0;
    EXPECT_EQ(box_contains(kBgl, box, coord_of(kBgl, static_cast<NodeId>(id))), in_list)
        << "node " << id;
  }
}

TEST(Partition, ToStringIsReadable) {
  const std::string text = to_string(Box{Coord{1, 2, 3}, Triple{2, 2, 2}});
  EXPECT_NE(text.find("(1, 2, 3)"), std::string::npos);
  EXPECT_NE(text.find("2x2x2"), std::string::npos);
}

}  // namespace
}  // namespace bgl
