// Differential gate for the algorithm seam (src/sched/algorithm.hpp).
//
// reference_schedule() below is a frozen, line-for-line copy of
// Scheduler::schedule() as it existed immediately before the seam refactor
// (pre-seam scheduler.cpp, with member state turned into locals). The tests
// replay randomized machine states through both the frozen loop and the
// seam-hosted default algorithm and require byte-equal decisions, audit
// records and counters across the whole config grid — backfill modes,
// migration, arena on/off, indexed and scan paths, all three policies.
//
// Do not "fix" or modernise the reference when the engine changes: its
// whole value is that it does NOT follow refactors. If a deliberate
// behaviour change lands, regenerate the reference from the last commit
// before the change and say so in the commit message.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "failure/trace.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "sched/backfill.hpp"
#include "sched/migration.hpp"
#include "torus/index.hpp"

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(kBgl);
  return instance;
}

struct RefScratch {
  PlacementArena arena;
  NodeSet occ;
  NodeSet flagged;
  NodeSet obstacles;
  std::vector<RunningJob> live;
  std::vector<Reservation> reservations;
};

// ---- frozen pre-seam Scheduler::schedule() (do not modernise) ----------
SchedulingDecision reference_schedule(const PartitionCatalog& cat,
                                      PlacementPolicy& policy,
                                      const FaultPredictor& predictor,
                                      const SchedulerConfig& config,
                                      const obs::Observer& obs, double now,
                                      const std::vector<WaitingJob>& queue,
                                      const std::vector<RunningJob>& running,
                                      const NodeSet& occupied,
                                      const FreePartitionIndex* index) {
  if (obs.counters != nullptr) {
    obs.counters->add(obs::Counter::kSchedInvocations);
  }
  const bool tracing = obs.trace != nullptr;

  SchedulingDecision decision;

  RefScratch local;
  RefScratch& s = local;
  PlacementArena* arena = config.arena_scratch ? &s.arena : nullptr;
  s.arena.reset();
  s.occ = occupied;
  s.live.assign(running.begin(), running.end());
  NodeSet& occ = s.occ;
  std::vector<RunningJob>& live = s.live;

  ArenaVector<char> placed(s.arena);
  placed.assign(queue.size(), 0);
  ArenaVector<int> candidates(s.arena);
  bool migration_tried = false;

  std::unique_ptr<FreePartitionIndex> scratch_index;
  FreePartitionIndex* idx = nullptr;
  if (index != nullptr) {
    BGL_CHECK(index->occupied() == occupied,
              "free-partition index out of sync with occupancy");
    scratch_index = std::make_unique<FreePartitionIndex>(*index);
    idx = scratch_index.get();
  }

  auto make_context = [&](const NodeSet& o, const NodeSet& flagged,
                          int job_size, const FreePartitionIndex* ix,
                          PlacementArena* ar) {
    PlacementContext ctx;
    ctx.catalog = &cat;
    ctx.occupied = &o;
    ctx.index = ix;
    ctx.mfp_before_index =
        ix != nullptr ? ix->first_free_index() : cat.first_free_index(o);
    ctx.mfp_before_size =
        ctx.mfp_before_index < 0 ? 0 : cat.entry(ctx.mfp_before_index).size;
    ctx.flagged = &flagged;
    ctx.confidence = predictor.confidence();
    ctx.pf_rule = config.pf_rule;
    ctx.job_size = job_size;
    ctx.counters = obs.counters;
    ctx.arena = ar;
    return ctx;
  };

  auto query_predictor = [&](const WaitingJob& job) -> const NodeSet& {
    if (config.arena_scratch) {
      predictor.flagged_nodes_into(s.flagged, now, now + job.estimate, job.id);
    } else {
      s.flagged = predictor.flagged_nodes(now, now + job.estimate, job.id);
    }
    if (obs.counters != nullptr || tracing) {
      const int n_flagged = s.flagged.count();
      if (obs.counters != nullptr) {
        obs.counters->add(obs::Counter::kPredictorQueries);
        obs.counters->add(obs::Counter::kPredictorNodesFlagged,
                          static_cast<std::uint64_t>(n_flagged));
      }
      if (tracing) {
        decision.predictor_queries.push_back(
            PredictorQueryRecord{job.id, now, now + job.estimate, n_flagged});
      }
    }
    return s.flagged;
  };

  auto note_scan = [&](int alloc_size, std::size_t found) {
    if (obs.counters == nullptr) return;
    const auto [first, last] = cat.size_range(alloc_size);
    obs.counters->add(obs::Counter::kPartitionsScanned,
                      static_cast<std::uint64_t>(last - first));
    obs.counters->add(obs::Counter::kCandidatesConsidered,
                      static_cast<std::uint64_t>(found));
  };

  auto start_job = [&](const WaitingJob& job, int entry_index,
                       const NodeSet& flagged, std::span<const int> considered,
                       const PlacementExplain& explain, bool backfill) {
    decision.starts.push_back(Start{job.id, entry_index});
    if (cat.entry(entry_index).mask.intersects(flagged)) {
      ++decision.starts_on_flagged;
      for (const int c : considered) {
        if (!cat.entry(c).mask.intersects(flagged)) {
          ++decision.flagged_with_alternative;
          break;
        }
      }
    }
    occ |= cat.entry(entry_index).mask;
    if (idx != nullptr) idx->occupy(cat.entry(entry_index).mask);
    live.push_back(RunningJob{job.id, entry_index, now + job.estimate});
    if (obs.counters != nullptr) {
      obs.counters->add(obs::Counter::kSchedStarts);
      if (backfill) obs.counters->add(obs::Counter::kSchedBackfillStarts);
    }
    if (obs.histograms != nullptr) {
      obs.histograms->add(obs::Hist::kCandidates,
                          static_cast<double>(considered.size()));
    }
    if (tracing) {
      decision.placements.push_back(PlacementRecord{
          job.id, entry_index, static_cast<int>(considered.size()),
          explain.flags, explain.l_mfp, explain.l_pf, explain.e_loss,
          explain.mfp_after, backfill});
    }
  };

  std::size_t head = 0;
  while (head < queue.size()) {
    if (placed[head]) {
      ++head;
      continue;
    }
    const WaitingJob& job = queue[head];
    BGL_CHECK(job.alloc_size > 0 && job.alloc_size <= cat.num_nodes(),
              "waiting job has invalid alloc size");

    candidates.clear();
    if (idx != nullptr) {
      idx->free_entries_of_size(job.alloc_size, candidates);
    } else {
      cat.free_entries_of_size(occ, job.alloc_size, candidates);
    }
    note_scan(job.alloc_size, candidates.size());
    if (!candidates.empty()) {
      const NodeSet& flagged = query_predictor(job);
      const PlacementContext ctx = make_context(occ, flagged, job.size, idx, arena);
      PlacementExplain explain;
      const int chosen =
          policy.choose(ctx, candidates, tracing ? &explain : nullptr);
      start_job(job, chosen, flagged, candidates, explain, /*backfill=*/false);
      placed[head] = 1;
      ++head;
      continue;
    }

    if (config.migration && !migration_tried && !live.empty()) {
      migration_tried = true;
      s.obstacles = occ;
      for (const RunningJob& r : live) {
        s.obstacles.subtract(cat.entry(r.entry_index).mask);
      }
      if (auto repack =
              try_repack(cat, live, job.alloc_size, &s.obstacles, arena)) {
        for (const Migration& m : repack->migrations) {
          bool was_started_here = false;
          for (std::size_t s_i = 0; s_i < decision.starts.size(); ++s_i) {
            if (decision.starts[s_i].id == m.id) {
              decision.starts[s_i].entry_index = m.to_entry;
              if (tracing) decision.placements[s_i].entry_index = m.to_entry;
              was_started_here = true;
              break;
            }
          }
          if (!was_started_here) decision.migrations.push_back(m);
        }
        occ = std::move(repack->occupied_after);
        live = std::move(repack->running_after);
        if (idx != nullptr) idx->reset(occ);
        continue;
      }
    }

    if (config.backfill != BackfillMode::kNone && config.backfill_depth > 0) {
      std::vector<Reservation>& reservations = s.reservations;
      reservations.clear();
      const int reservation_count =
          config.backfill == BackfillMode::kEasy
              ? 1
              : std::max(1, config.reservation_depth);
      for (std::size_t q = head;
           q < queue.size() &&
           static_cast<int>(reservations.size()) < reservation_count;
           ++q) {
        if (placed[q]) continue;
        auto r = compute_reservation(cat, occ, live, queue[q].alloc_size, now,
                                     arena);
        if (!r) {
          if (q == head) break;
          continue;
        }
        reservations.push_back(std::move(*r));
      }
      if (reservations.empty()) break;

      auto admissible = [&](double est_finish, const NodeSet& mask) {
        for (const Reservation& r : reservations) {
          const bool in_time = est_finish <= r.time + 1e-9;
          if (!in_time && mask.intersects(r.mask)) return false;
        }
        return true;
      };

      int examined = 0;
      for (std::size_t j = head + 1;
           j < queue.size() && examined < config.backfill_depth; ++j) {
        if (placed[j]) continue;
        ++examined;
        const WaitingJob& filler = queue[j];
        candidates.clear();
        if (idx != nullptr) {
          idx->free_entries_of_size(filler.alloc_size, candidates);
        } else {
          cat.free_entries_of_size(occ, filler.alloc_size, candidates);
        }
        note_scan(filler.alloc_size, candidates.size());
        if (candidates.empty()) continue;
        ArenaVector<int> allowed(s.arena);
        for (const int c : candidates) {
          if (admissible(now + filler.estimate, cat.entry(c).mask)) {
            allowed.push_back(c);
          }
        }
        if (allowed.empty()) continue;
        const NodeSet& flagged = query_predictor(filler);
        const PlacementContext ctx =
            make_context(occ, flagged, filler.size, idx, arena);
        PlacementExplain explain;
        const int chosen =
            policy.choose(ctx, allowed, tracing ? &explain : nullptr);
        start_job(filler, chosen, flagged, allowed, explain, /*backfill=*/true);
        placed[j] = 1;
      }
    }
    break;
  }

  if (obs.counters != nullptr) {
    obs.counters->add(obs::Counter::kSchedMigrations,
                      static_cast<std::uint64_t>(decision.migrations.size()));
  }
  return decision;
}
// ---- end of frozen reference -------------------------------------------

// Deterministic scenario generator: a non-overlapping running set, optional
// orphan (down-node) occupancy, and a queue mixing large blockers with
// small fillers so the backfill and migration paths actually fire.
struct Scenario {
  double now = 0.0;
  std::vector<RunningJob> running;
  NodeSet occupied{128};
  std::vector<WaitingJob> queue;
};

Scenario make_scenario(std::mt19937_64& rng) {
  Scenario sc;
  sc.now = std::uniform_real_distribution<double>(0.0, 1e4)(rng);

  std::uniform_int_distribution<int> entry_dist(0, catalog().num_entries() - 1);
  const int n_running = std::uniform_int_distribution<int>(0, 5)(rng);
  std::uint64_t id = 100;
  for (int i = 0; i < n_running; ++i) {
    for (int tries = 0; tries < 32; ++tries) {
      const int e = entry_dist(rng);
      if (catalog().entry(e).size > 64) continue;
      if (sc.occupied.intersects(catalog().entry(e).mask)) continue;
      sc.occupied |= catalog().entry(e).mask;
      sc.running.push_back(RunningJob{
          id++, e,
          sc.now + std::uniform_real_distribution<double>(10.0, 5e3)(rng)});
      break;
    }
  }
  // Occasionally some occupancy belongs to no job (down nodes): the
  // migration path must carry it through repacks as obstacles.
  if (std::bernoulli_distribution(0.3)(rng)) {
    std::uniform_int_distribution<int> node(0, 127);
    for (int i = 0; i < 4; ++i) sc.occupied.set(node(rng));
  }

  const int n_queue = std::uniform_int_distribution<int>(1, 10)(rng);
  for (int j = 0; j < n_queue; ++j) {
    // Sample sizes from real catalog entries so every request is allocatable;
    // bias the head of the queue toward large blockers.
    int size = catalog().entry(entry_dist(rng)).size;
    if (j == 0 && std::bernoulli_distribution(0.6)(rng)) {
      size = std::max(size, 64 + 8 * std::uniform_int_distribution<int>(0, 8)(rng));
      size = std::min(size, 128);
    }
    sc.queue.push_back(WaitingJob{
        static_cast<std::uint64_t>(j), size, size,
        std::uniform_real_distribution<double>(50.0, 5e3)(rng)});
  }
  return sc;
}

void expect_equal(const SchedulingDecision& a, const SchedulingDecision& b,
                  const char* label) {
  ASSERT_EQ(a.starts.size(), b.starts.size()) << label;
  for (std::size_t i = 0; i < a.starts.size(); ++i) {
    EXPECT_EQ(a.starts[i].id, b.starts[i].id) << label << " start " << i;
    EXPECT_EQ(a.starts[i].entry_index, b.starts[i].entry_index)
        << label << " start " << i;
  }
  ASSERT_EQ(a.migrations.size(), b.migrations.size()) << label;
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].id, b.migrations[i].id) << label;
    EXPECT_EQ(a.migrations[i].from_entry, b.migrations[i].from_entry) << label;
    EXPECT_EQ(a.migrations[i].to_entry, b.migrations[i].to_entry) << label;
  }
  EXPECT_EQ(a.starts_on_flagged, b.starts_on_flagged) << label;
  EXPECT_EQ(a.flagged_with_alternative, b.flagged_with_alternative) << label;
  ASSERT_EQ(a.placements.size(), b.placements.size()) << label;
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    const PlacementRecord& pa = a.placements[i];
    const PlacementRecord& pb = b.placements[i];
    EXPECT_EQ(pa.id, pb.id) << label;
    EXPECT_EQ(pa.entry_index, pb.entry_index) << label;
    EXPECT_EQ(pa.candidates, pb.candidates) << label;
    EXPECT_EQ(pa.flags_in_chosen, pb.flags_in_chosen) << label;
    EXPECT_EQ(pa.l_mfp, pb.l_mfp) << label;       // bit-equal, not near
    EXPECT_EQ(pa.l_pf, pb.l_pf) << label;
    EXPECT_EQ(pa.e_loss, pb.e_loss) << label;
    EXPECT_EQ(pa.mfp_after, pb.mfp_after) << label;
    EXPECT_EQ(pa.backfill, pb.backfill) << label;
    EXPECT_EQ(pa.res_time, pb.res_time) << label;
    EXPECT_EQ(pa.res_entry, pb.res_entry) << label;
  }
  ASSERT_EQ(a.predictor_queries.size(), b.predictor_queries.size()) << label;
  for (std::size_t i = 0; i < a.predictor_queries.size(); ++i) {
    EXPECT_EQ(a.predictor_queries[i].id, b.predictor_queries[i].id) << label;
    EXPECT_EQ(a.predictor_queries[i].nodes_flagged,
              b.predictor_queries[i].nodes_flagged)
        << label;
  }
  // The default algorithm must not grow a reservation trail: that would
  // change sched_decision emission and break pre-seam trace identity.
  EXPECT_TRUE(b.reservations.empty()) << label;
}

// Non-timing counters the two engines must agree on exactly.
const obs::Counter kComparedCounters[] = {
    obs::Counter::kSchedInvocations,    obs::Counter::kSchedStarts,
    obs::Counter::kSchedBackfillStarts, obs::Counter::kSchedMigrations,
    obs::Counter::kPredictorQueries,    obs::Counter::kPredictorNodesFlagged,
    obs::Counter::kPartitionsScanned,   obs::Counter::kCandidatesConsidered,
};

struct PolicyCase {
  const char* label;
  std::unique_ptr<PlacementPolicy> (*make_policy)();
};

TEST(SeamReference, DefaultAlgorithmMatchesFrozenLoopAcrossConfigGrid) {
  const FailureTrace trace({{2e3, 5}, {4e3, 77}, {9e3, 19}, {1.5e4, 101}}, 128);

  const PolicyCase policies[] = {
      {"mfp-loss",
       []() -> std::unique_ptr<PlacementPolicy> {
         return std::make_unique<MfpLossPolicy>();
       }},
      {"balancing",
       []() -> std::unique_ptr<PlacementPolicy> {
         return std::make_unique<BalancingPolicy>();
       }},
      {"tie-break",
       []() -> std::unique_ptr<PlacementPolicy> {
         return std::make_unique<TieBreakPolicy>();
       }},
  };

  std::mt19937_64 rng(20260809);
  int backfill_passes_seen = 0;
  int migrations_seen = 0;
  for (int scenario_i = 0; scenario_i < 60; ++scenario_i) {
    const Scenario sc = make_scenario(rng);
    for (const PolicyCase& pc : policies) {
      // Deterministic (alpha 1) predictors: coin-flip predictors draw from
      // internal RNG state that two engines cannot share.
      BalancingPredictor predictor(trace, 1.0);

      for (const BackfillMode backfill :
           {BackfillMode::kNone, BackfillMode::kEasy,
            BackfillMode::kConservative}) {
        for (const bool migration : {false, true}) {
          for (const bool arena : {false, true}) {
            SchedulerConfig config;
            config.backfill = backfill;
            config.migration = migration;
            config.arena_scratch = arena;
            config.backfill_depth = 8;
            config.reservation_depth = 3;

            std::ostringstream ref_trace, eng_trace;
            obs::TraceSink ref_sink(ref_trace), eng_sink(eng_trace);
            obs::CounterRegistry ref_counters, eng_counters;
            obs::Observer ref_obs, eng_obs;
            ref_obs.trace = &ref_sink;
            ref_obs.counters = &ref_counters;
            eng_obs.trace = &eng_sink;
            eng_obs.counters = &eng_counters;

            auto ref_policy = pc.make_policy();
            const SchedulingDecision expected = reference_schedule(
                catalog(), *ref_policy, predictor, config, ref_obs, sc.now,
                sc.queue, sc.running, sc.occupied, nullptr);

            Scheduler engine(catalog(), pc.make_policy(), predictor, config);
            engine.set_observer(eng_obs);
            const SchedulingDecision got = engine.schedule(
                sc.now, sc.queue, sc.running, sc.occupied, nullptr);

            const std::string label = std::string(pc.label) + "/bf" +
                                      std::to_string(static_cast<int>(backfill)) +
                                      "/mig" + std::to_string(migration) +
                                      "/arena" + std::to_string(arena) +
                                      "/scenario" + std::to_string(scenario_i);
            expect_equal(expected, got, label.c_str());
            for (const obs::Counter c : kComparedCounters) {
              EXPECT_EQ(ref_counters.value(c), eng_counters.value(c)) << label;
            }

            // The indexed path must match the scan path bit-for-bit too.
            FreePartitionIndex index(catalog());
            index.reset(sc.occupied);
            const SchedulingDecision indexed = engine.schedule(
                sc.now, sc.queue, sc.running, sc.occupied, &index);
            expect_equal(expected, indexed, (label + "/indexed").c_str());

            for (const PlacementRecord& p : got.placements) {
              if (p.backfill) ++backfill_passes_seen;
            }
            migrations_seen += static_cast<int>(got.migrations.size());
          }
        }
      }
    }
  }
  // The grid must actually exercise the interesting paths, or the identity
  // proof is vacuous.
  EXPECT_GT(backfill_passes_seen, 50);
  EXPECT_GT(migrations_seen, 10);
}

}  // namespace
}  // namespace bgl
