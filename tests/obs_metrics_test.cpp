// Tests of the periodic `metrics` telemetry: the LatencyRing window
// statistics, Prometheus exposition rendering (src/obs/prometheus.hpp),
// driver- and service-side emission, and the trace auditor's cross-checks
// over metrics events (accept the genuine stream, catch seeded corruption).
#include "obs/series.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/reader.hpp"
#include "obs/trace.hpp"
#include "sim/driver.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace bgl {
namespace {

using obs::AuditOptions;
using obs::AuditReport;
using obs::LatencyRing;
using obs::TraceSink;
using obs::ViolationCode;

// --- LatencyRing ----------------------------------------------------------

TEST(LatencyRing, EmptyAnswersZero) {
  LatencyRing ring(8);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.quantile(0.5), 0.0);
  EXPECT_EQ(ring.max(), 0.0);
}

TEST(LatencyRing, SingleSampleIsEveryQuantile) {
  LatencyRing ring(8);
  ring.add(42.5);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.quantile(0.0), 42.5);
  EXPECT_EQ(ring.quantile(0.5), 42.5);
  EXPECT_EQ(ring.quantile(0.99), 42.5);
  EXPECT_EQ(ring.quantile(1.0), 42.5);
  EXPECT_EQ(ring.max(), 42.5);
}

TEST(LatencyRing, NearestRankOverKnownSamples) {
  LatencyRing ring(16);
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) ring.add(v);
  EXPECT_EQ(ring.quantile(0.5), 3.0);
  EXPECT_EQ(ring.quantile(1.0), 5.0);
  EXPECT_EQ(ring.max(), 5.0);
}

TEST(LatencyRing, WrapsKeepingTheMostRecentWindow) {
  LatencyRing ring(4);
  for (int i = 1; i <= 10; ++i) ring.add(static_cast<double>(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.added(), 10u);
  // Only {7, 8, 9, 10} remain.
  EXPECT_EQ(ring.quantile(0.0), 7.0);
  EXPECT_EQ(ring.max(), 10.0);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.added(), 0u);
  EXPECT_EQ(ring.max(), 0.0);
}

// --- Prometheus exposition ------------------------------------------------

TEST(PrometheusRender, NullRegistriesRenderJustTheEofMarker) {
  std::string out;
  obs::prometheus_render(out, nullptr, nullptr, nullptr);
  EXPECT_EQ(out, "# EOF\n");
}

TEST(PrometheusRender, CountersBecomeTotalFamilies) {
  obs::CounterRegistry counters;
  counters.add(obs::Counter::kSchedInvocations, 7);
  std::string out;
  obs::prometheus_render(out, &counters, nullptr, nullptr);
  EXPECT_NE(out.find("# TYPE bgl_sched_invocations_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("bgl_sched_invocations_total 7\n"), std::string::npos);
  EXPECT_TRUE(out.size() >= 6 && out.substr(out.size() - 6) == "# EOF\n");
}

TEST(PrometheusRender, SingleSampleHistogramQuantilesAgree) {
  obs::HistogramRegistry histograms;
  histograms.add(obs::Hist::kDecisionUs, 100.0);
  std::string out;
  obs::prometheus_render(out, nullptr, &histograms, nullptr);
  const std::string name =
      obs::prometheus_metric_name(obs::histogram_name(obs::Hist::kDecisionUs));
  EXPECT_NE(out.find("# TYPE " + name + " summary\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_count 1\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_sum 100\n"), std::string::npos);
  // One sample: every quantile is clamped to it exactly.
  EXPECT_NE(out.find(name + "{quantile=\"0.5\"} 100\n"), std::string::npos);
  EXPECT_NE(out.find(name + "{quantile=\"0.99\"} 100\n"), std::string::npos);
}

TEST(PrometheusRender, PhaseTreeBecomesPathLabelledFamilies) {
  obs::PhaseProfiler profiler;
  {
    obs::ScopedPhase pass(&profiler, obs::Phase::kSchedPass);
    obs::ScopedPhase score(&profiler, obs::Phase::kScore);
  }
  std::string out;
  obs::prometheus_render(out, nullptr, nullptr, &profiler);
  EXPECT_NE(out.find("# TYPE bgl_phase_spans_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("bgl_phase_spans_total{path=\"sched.pass\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      out.find("bgl_phase_spans_total{path=\"sched.pass/sched.score\"} 1\n"),
      std::string::npos);
  EXPECT_NE(out.find("bgl_phase_seconds_total{path=\"sched.pass\"}"),
            std::string::npos);
  EXPECT_NE(out.find("bgl_phase_self_seconds_total{path=\"sched.pass\"}"),
            std::string::npos);
}

TEST(PrometheusRender, GaugesRenderAsGaugeFamilies) {
  std::string out;
  obs::prometheus_render(out, nullptr, nullptr, nullptr,
                         {{"svc.queue_depth", 4.0}});
  EXPECT_NE(out.find("# TYPE bgl_svc_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("bgl_svc_queue_depth 4\n"), std::string::npos);
}

// --- driver-side emission + audit cross-check -----------------------------

Workload metrics_workload() {
  Workload w;
  w.name = "metrics";
  w.machine_nodes = 128;
  w.jobs = {
      Job{1, 0.0, 100.0, 100.0, 128},
      Job{2, 10.0, 50.0, 60.0, 64},
      Job{3, 20.0, 50.0, 60.0, 64},
      Job{4, 30.0, 40.0, 45.0, 32},
  };
  normalize(w);
  return w;
}

std::string driver_trace(double metrics_interval, double snapshot_interval) {
  Workload w = metrics_workload();
  const FailureTrace trace({FailureEvent{40.0, 0}}, 128);
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.5;
  config.failure_semantics = FailureSemantics::kDownFor;
  config.node_downtime = 25.0;
  config.metrics_interval = metrics_interval;
  config.snapshot_interval = snapshot_interval;
  std::ostringstream out;
  TraceSink sink(out);
  config.obs.trace = &sink;
  run_simulation(w, trace, config);
  return out.str();
}

AuditReport audit_string(const std::string& trace, AuditOptions opts = {}) {
  std::istringstream in(trace);
  return obs::audit_trace(in, opts);
}

bool has_code(const AuditReport& report, ViolationCode code) {
  return std::any_of(
      report.violations.begin(), report.violations.end(),
      [code](const obs::Violation& v) { return v.code == code; });
}

/// Zero out every wall-clock field ("wall_us" on all lines, the metrics
/// decision_us_* quantiles) so deterministic traces compare byte-identical.
std::string scrub_wall(const std::string& trace) {
  std::string out = trace;
  for (const char* key :
       {"\"wall_us\":", "\"decision_us_p50\":", "\"decision_us_p99\":",
        "\"decision_us_max\":"}) {
    for (std::size_t at = out.find(key); at != std::string::npos;
         at = out.find(key, at + 1)) {
      const std::size_t start = at + std::string(key).size();
      std::size_t end = start;
      while (end < out.size() && out[end] != ',' && out[end] != '}') ++end;
      out = out.substr(0, start) + "0" + out.substr(end);
    }
  }
  return out;
}

std::size_t count_events(const std::string& trace, const char* type) {
  const std::string needle = std::string("\"type\":\"") + type + "\"";
  std::size_t n = 0;
  for (std::size_t pos = trace.find(needle); pos != std::string::npos;
       pos = trace.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

/// Bump the integer value of `key` on the first metrics line by +1.
std::string corrupt_first_metrics_field(const std::string& trace,
                                        const std::string& key) {
  const std::size_t line = trace.find("\"type\":\"metrics\"");
  EXPECT_NE(line, std::string::npos);
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = trace.find(needle, line);
  EXPECT_NE(at, std::string::npos);
  const std::size_t start = at + needle.size();
  std::size_t end = start;
  while (end < trace.size() && trace[end] != ',' && trace[end] != '}') ++end;
  const long long value = std::stoll(trace.substr(start, end - start));
  return trace.substr(0, start) + std::to_string(value + 1) +
         trace.substr(end);
}

TEST(MetricsEmission, DriverOffByDefaultKeepsTraceByteIdentical) {
  EXPECT_EQ(count_events(driver_trace(0.0, 0.0), "metrics"), 0u);
  EXPECT_EQ(scrub_wall(driver_trace(0.0, 0.0)),
            scrub_wall(driver_trace(0.0, 0.0)));
}

TEST(MetricsEmission, DriverEmitsAndStrictAuditAccepts) {
  const std::string trace = driver_trace(30.0, 45.0);
  EXPECT_GT(count_events(trace, "metrics"), 2u);
  EXPECT_GT(count_events(trace, "machine_state"), 2u);
  const AuditReport report =
      audit_string(trace, AuditOptions{.strict = true});
  EXPECT_TRUE(report.ok()) << trace;
}

TEST(MetricsEmission, AuditCatchesCorruptedGauge) {
  const std::string trace = driver_trace(30.0, 0.0);
  for (const char* key : {"queue_depth", "busy_nodes", "submits", "starts"}) {
    const AuditReport report = audit_string(
        corrupt_first_metrics_field(trace, key), AuditOptions{.strict = true});
    EXPECT_FALSE(report.ok()) << key;
    EXPECT_TRUE(has_code(report, ViolationCode::kMetricsMismatch)) << key;
  }
}

TEST(MetricsEmission, MetricsDoNotPerturbTheSimulation) {
  // The decision stream must be identical with and without emission: strip
  // metrics/machine_state lines and compare.
  const auto strip = [](const std::string& trace) {
    std::istringstream in(trace);
    std::string line;
    std::string out;
    while (std::getline(in, line)) {
      if (line.find("\"type\":\"metrics\"") == std::string::npos &&
          line.find("\"type\":\"machine_state\"") == std::string::npos) {
        out += line + "\n";
      }
    }
    return out;
  };
  EXPECT_EQ(scrub_wall(strip(driver_trace(30.0, 45.0))),
            scrub_wall(driver_trace(0.0, 0.0)));
}

// --- service-side emission + audit cross-check ----------------------------

svc::Event submit(double t, std::uint64_t job, int size, double estimate,
                  double runtime) {
  svc::Event e;
  e.kind = svc::EventKind::kSubmit;
  e.time = t;
  e.job = job;
  e.size = size;
  e.estimate = estimate;
  e.runtime = runtime;
  return e;
}

svc::Event complete(double t, std::uint64_t job) {
  svc::Event e;
  e.kind = svc::EventKind::kComplete;
  e.time = t;
  e.job = job;
  return e;
}

std::string service_trace(double metrics_interval) {
  std::ostringstream out;
  TraceSink sink(out);
  svc::ServiceConfig config;
  config.obs.trace = &sink;
  config.metrics_interval = metrics_interval;
  svc::SchedulerService service(config);
  std::vector<svc::Decision> decisions;
  // Jobs run serially on the full machine, so starts are deterministic.
  double t = 0.0;
  for (std::uint64_t job = 1; job <= 6; ++job) {
    service.handle(submit(t, job, 128, 400.0, 300.0), decisions);
    service.handle(complete(t + 300.0, job), decisions);
    t += 300.0;
  }
  service.finish_stream();
  return out.str();
}

TEST(MetricsEmission, ServiceOffByDefaultKeepsTraceByteIdentical) {
  EXPECT_EQ(count_events(service_trace(0.0), "metrics"), 0u);
  EXPECT_EQ(scrub_wall(service_trace(0.0)), scrub_wall(service_trace(0.0)));
}

TEST(MetricsEmission, ServiceEmitsAndStrictAuditAccepts) {
  const std::string trace = service_trace(120.0);
  EXPECT_GT(count_events(trace, "metrics"), 5u);
  const AuditReport report =
      audit_string(trace, AuditOptions{.strict = true});
  EXPECT_TRUE(report.ok()) << trace;
}

TEST(MetricsEmission, ServiceRejectedEventEmitsNothing) {
  std::ostringstream out;
  TraceSink sink(out);
  svc::ServiceConfig config;
  config.obs.trace = &sink;
  config.metrics_interval = 60.0;
  svc::SchedulerService service(config);
  std::vector<svc::Decision> decisions;
  service.handle(submit(0.0, 1, 128, 400.0, 300.0), decisions);
  const std::string before = out.str();
  // Unknown job: refused after validation, before any boundary drain.
  EXPECT_THROW(service.handle(complete(500.0, 99), decisions),
               svc::ProtocolError);
  EXPECT_EQ(out.str(), before);
  // The boundaries the rejected event would have crossed emit on the next
  // accepted event instead, still in time order.
  service.handle(complete(300.0, 1), decisions);
  EXPECT_GT(count_events(out.str(), "metrics"), 0u);
}

}  // namespace
}  // namespace bgl
