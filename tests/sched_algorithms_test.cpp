// Tests of the scheduling-algorithm portfolio behind the seam
// (src/sched/algorithm.hpp): registry round-trips, the easy/krevat
// coincidence, and the safety invariant each discipline advertises —
// EASY's head reservation is never violated, conservative never delays a
// reserved job, holdback never dips below its free-node floor — plus the
// end-to-end reservation provenance: traces from the new algorithms pass
// the strict auditor and seeded corruptions are caught as "reservation".
#include "sched/algorithm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <sstream>
#include <string>

#include "failure/trace.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/driver.hpp"

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(kBgl);
  return instance;
}

// --- registry ------------------------------------------------------------

TEST(SchedAlgorithmRegistry, ToStringParseRoundTrip) {
  for (const SchedAlgorithm a :
       {SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
        SchedAlgorithm::kConservative, SchedAlgorithm::kEasyHoldback}) {
    const auto parsed = parse_sched_algorithm(to_string(a));
    ASSERT_TRUE(parsed.has_value()) << to_string(a);
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(parse_sched_algorithm("").has_value());
  EXPECT_FALSE(parse_sched_algorithm("fcfs").has_value());
  EXPECT_FALSE(parse_sched_algorithm("EASY").has_value());  // case-sensitive
}

TEST(SchedAlgorithmRegistry, FactoryNamesMatchRegistryNames) {
  for (const SchedAlgorithm a :
       {SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
        SchedAlgorithm::kConservative, SchedAlgorithm::kEasyHoldback}) {
    EXPECT_STREQ(make_scheduling_algorithm(a)->name(), to_string(a));
  }
}

TEST(SchedAlgorithmRegistry, SchedulerExposesConfiguredAlgorithm) {
  const FailureTrace trace({}, 128);
  SchedulerConfig config;
  config.algorithm = SchedAlgorithm::kConservative;
  NullPredictor predictor(128);
  Scheduler sched(catalog(), std::make_unique<MfpLossPolicy>(), predictor,
                  config);
  EXPECT_EQ(sched.algorithm_name(), "conservative");
}

// --- scenario harness ----------------------------------------------------

struct Scenario {
  double now = 1000.0;
  std::vector<RunningJob> running;
  NodeSet occupied{128};
  std::vector<WaitingJob> queue;
};

Scenario make_scenario(std::mt19937_64& rng) {
  Scenario sc;
  sc.now = std::uniform_real_distribution<double>(0.0, 1e4)(rng);
  std::uniform_int_distribution<int> entry_dist(0, catalog().num_entries() - 1);
  const int n_running = std::uniform_int_distribution<int>(1, 5)(rng);
  std::uint64_t id = 100;
  for (int i = 0; i < n_running; ++i) {
    for (int tries = 0; tries < 32; ++tries) {
      const int e = entry_dist(rng);
      if (catalog().entry(e).size > 64) continue;
      if (sc.occupied.intersects(catalog().entry(e).mask)) continue;
      sc.occupied |= catalog().entry(e).mask;
      sc.running.push_back(RunningJob{
          id++, e,
          sc.now + std::uniform_real_distribution<double>(10.0, 5e3)(rng)});
      break;
    }
  }
  const int n_queue = std::uniform_int_distribution<int>(2, 10)(rng);
  for (int j = 0; j < n_queue; ++j) {
    int size = catalog().entry(entry_dist(rng)).size;
    // Large blocker at the head most of the time, so phase 2 runs.
    if (j == 0 && std::bernoulli_distribution(0.8)(rng)) size = 128;
    sc.queue.push_back(WaitingJob{
        static_cast<std::uint64_t>(j), size, size,
        std::uniform_real_distribution<double>(50.0, 5e3)(rng)});
  }
  return sc;
}

struct TracedRun {
  SchedulingDecision decision;
  std::string trace_text;
};

TracedRun run_pass(const Scenario& sc, SchedulerConfig config) {
  const FailureTrace trace({{2e3, 5}, {6e3, 77}}, 128);
  BalancingPredictor predictor(trace, 1.0);
  Scheduler sched(catalog(), std::make_unique<MfpLossPolicy>(), predictor,
                  config);
  std::ostringstream out;
  obs::TraceSink sink(out);  // tracing on: fills placements + reservations
  obs::Observer obs;
  obs.trace = &sink;
  sched.set_observer(obs);
  TracedRun run;
  run.decision = sched.schedule(sc.now, sc.queue, sc.running, sc.occupied);
  run.trace_text = out.str();
  return run;
}

/// Post-pass running set: pre-existing jobs plus everything started this
/// pass (migration-free configs only, so entries are final).
std::vector<RunningJob> post_running(const Scenario& sc,
                                     const SchedulingDecision& d) {
  std::vector<RunningJob> live = sc.running;
  for (const Start& s : d.starts) {
    const WaitingJob& job = *std::find_if(
        sc.queue.begin(), sc.queue.end(),
        [&](const WaitingJob& w) { return w.id == s.id; });
    live.push_back(RunningJob{s.id, s.entry_index, sc.now + job.estimate});
  }
  return live;
}

/// The reservation-safety predicate every discipline advertises: at the
/// reserved start time the reserved partition must be free, assuming jobs
/// finish at their estimates. Equivalently no post-pass running job both
/// overlaps the reserved partition and is estimated to outlive the
/// reservation.
void expect_reservation_feasible(const ReservationRecord& r,
                                 const std::vector<RunningJob>& live,
                                 const char* label) {
  const NodeSet& reserved = catalog().entry(r.entry_index).mask;
  for (const RunningJob& j : live) {
    const bool in_time = j.est_finish <= r.time + 1e-9;
    EXPECT_TRUE(in_time || !catalog().entry(j.entry_index).mask.intersects(
                               reserved))
        << label << ": job " << j.id << " (est_finish " << j.est_finish
        << ") squats on the partition reserved until " << r.time;
  }
}

// --- easy ≡ krevat under the paper's EASY mode ---------------------------

TEST(EasyAlgorithm, DecisionsCoincideWithKrevatBaseline) {
  std::mt19937_64 rng(7);
  int backfills = 0;
  for (int i = 0; i < 80; ++i) {
    const Scenario sc = make_scenario(rng);
    SchedulerConfig base;
    base.backfill = BackfillMode::kEasy;
    base.backfill_depth = 8;
    base.migration = false;

    SchedulerConfig krevat = base;
    krevat.algorithm = SchedAlgorithm::kKrevat;
    SchedulerConfig easy = base;
    easy.algorithm = SchedAlgorithm::kEasy;

    const TracedRun a = run_pass(sc, krevat);
    const TracedRun b = run_pass(sc, easy);

    ASSERT_EQ(a.decision.starts.size(), b.decision.starts.size()) << i;
    for (std::size_t s = 0; s < a.decision.starts.size(); ++s) {
      EXPECT_EQ(a.decision.starts[s].id, b.decision.starts[s].id) << i;
      EXPECT_EQ(a.decision.starts[s].entry_index,
                b.decision.starts[s].entry_index)
          << i;
    }
    // Same placements modulo reservation provenance: krevat never stamps
    // res fields, easy stamps them on every backfill placement.
    ASSERT_EQ(a.decision.placements.size(), b.decision.placements.size());
    for (std::size_t s = 0; s < a.decision.placements.size(); ++s) {
      EXPECT_EQ(a.decision.placements[s].backfill,
                b.decision.placements[s].backfill);
      EXPECT_EQ(a.decision.placements[s].res_entry, -1);
      if (b.decision.placements[s].backfill) {
        ++backfills;
        EXPECT_GE(b.decision.placements[s].res_entry, 0) << i;
        EXPECT_GE(b.decision.placements[s].res_time, sc.now) << i;
      } else {
        EXPECT_EQ(b.decision.placements[s].res_entry, -1) << i;
      }
    }
    EXPECT_TRUE(a.decision.reservations.empty());
  }
  EXPECT_GT(backfills, 20);  // the grid must actually exercise phase 2
}

// --- per-discipline invariants -------------------------------------------

TEST(EasyAlgorithm, HeadReservationNeverViolated) {
  std::mt19937_64 rng(11);
  int reservations_seen = 0;
  for (int i = 0; i < 120; ++i) {
    const Scenario sc = make_scenario(rng);
    SchedulerConfig config;
    config.algorithm = SchedAlgorithm::kEasy;
    config.backfill_depth = 8;
    config.migration = false;
    const TracedRun run = run_pass(sc, config);

    ASSERT_LE(run.decision.reservations.size(), 1u) << i;
    if (run.decision.reservations.empty()) continue;
    ++reservations_seen;
    const ReservationRecord& r = run.decision.reservations.front();
    // The reservation belongs to the first job left waiting.
    std::vector<std::uint64_t> started;
    for (const Start& s : run.decision.starts) started.push_back(s.id);
    const auto holder = std::find_if(
        sc.queue.begin(), sc.queue.end(), [&](const WaitingJob& w) {
          return std::find(started.begin(), started.end(), w.id) ==
                 started.end();
        });
    ASSERT_NE(holder, sc.queue.end()) << i;
    EXPECT_EQ(r.id, holder->id) << i;

    const std::vector<RunningJob> live = post_running(sc, run.decision);
    expect_reservation_feasible(r, live, "easy");
    // Every backfill placement is stamped with the binding reservation.
    for (const PlacementRecord& p : run.decision.placements) {
      if (!p.backfill) continue;
      EXPECT_EQ(p.res_entry, r.entry_index) << i;
      EXPECT_DOUBLE_EQ(p.res_time, r.time) << i;
    }
  }
  EXPECT_GT(reservations_seen, 40);
}

TEST(ConservativeAlgorithm, NoReservedJobEverDelayed) {
  std::mt19937_64 rng(13);
  int multi_reservation_passes = 0;
  for (int i = 0; i < 120; ++i) {
    const Scenario sc = make_scenario(rng);
    SchedulerConfig config;
    config.algorithm = SchedAlgorithm::kConservative;
    config.backfill_depth = 8;
    config.migration = false;
    const TracedRun run = run_pass(sc, config);

    const std::vector<RunningJob> live = post_running(sc, run.decision);
    if (run.decision.reservations.size() > 1) ++multi_reservation_passes;
    for (const ReservationRecord& r : run.decision.reservations) {
      expect_reservation_feasible(r, live, "conservative");
    }
    // Reservations are granted in queue order, one per still-waiting job
    // the pass examined, with no duplicates.
    for (std::size_t a = 0; a + 1 < run.decision.reservations.size(); ++a) {
      EXPECT_LT(run.decision.reservations[a].id,
                run.decision.reservations[a + 1].id)
          << i;
    }
    // A reserved job is by definition not started this pass.
    for (const ReservationRecord& r : run.decision.reservations) {
      for (const Start& s : run.decision.starts) EXPECT_NE(s.id, r.id) << i;
    }
  }
  EXPECT_GT(multi_reservation_passes, 10);
}

TEST(ConservativeAlgorithm, FillersRespectEveryReservationNotJustTheHead) {
  // Direct admission check against the decision trail: each backfill
  // placement must either finish before every granted reservation or avoid
  // its partition. (Feasibility above implies this; checking the admission
  // rule itself localises a failure to the filler, not the slot.)
  std::mt19937_64 rng(17);
  for (int i = 0; i < 120; ++i) {
    const Scenario sc = make_scenario(rng);
    SchedulerConfig config;
    config.algorithm = SchedAlgorithm::kConservative;
    config.backfill_depth = 8;
    config.migration = false;
    const TracedRun run = run_pass(sc, config);
    for (const PlacementRecord& p : run.decision.placements) {
      if (!p.backfill) continue;
      const WaitingJob& filler = *std::find_if(
          sc.queue.begin(), sc.queue.end(),
          [&](const WaitingJob& w) { return w.id == p.id; });
      const NodeSet& mask = catalog().entry(p.entry_index).mask;
      for (const ReservationRecord& r : run.decision.reservations) {
        const bool in_time = sc.now + filler.estimate <= r.time + 1e-9;
        EXPECT_TRUE(in_time ||
                    !mask.intersects(catalog().entry(r.entry_index).mask))
            << i << ": filler " << p.id << " tramples reservation of job "
            << r.id;
      }
    }
  }
}

TEST(EasyHoldbackAlgorithm, FreePoolNeverDipsBelowFloor) {
  std::mt19937_64 rng(19);
  int refusals = 0;
  for (int i = 0; i < 120; ++i) {
    const Scenario sc = make_scenario(rng);
    SchedulerConfig config;
    config.backfill_depth = 8;
    config.migration = false;

    config.algorithm = SchedAlgorithm::kEasyHoldback;
    config.holdback_nodes = 32;
    const TracedRun hold = run_pass(sc, config);

    // Replay the starts in commit order: every backfill start must leave at
    // least holdback_nodes free.
    NodeSet occ = sc.occupied;
    for (const Start& s : hold.decision.starts) {
      const auto rec = std::find_if(
          hold.decision.placements.begin(), hold.decision.placements.end(),
          [&](const PlacementRecord& p) { return p.id == s.id; });
      ASSERT_NE(rec, hold.decision.placements.end());
      occ |= catalog().entry(s.entry_index).mask;
      if (rec->backfill) {
        EXPECT_GE(128 - occ.count(), config.holdback_nodes)
            << i << ": backfilling job " << s.id << " broke the floor";
      }
    }

    // Holdback admits a subset of plain EASY's backfills.
    config.algorithm = SchedAlgorithm::kEasy;
    const TracedRun easy = run_pass(sc, config);
    const auto backfills = [](const SchedulingDecision& d) {
      int n = 0;
      for (const PlacementRecord& p : d.placements) n += p.backfill ? 1 : 0;
      return n;
    };
    EXPECT_LE(backfills(hold.decision), backfills(easy.decision)) << i;
    refusals += backfills(easy.decision) - backfills(hold.decision);
  }
  EXPECT_GT(refusals, 5);  // the floor must actually bind somewhere
}

// --- end-to-end: traces audit clean, corruptions are caught --------------

std::string traced_sim(SchedAlgorithm algorithm) {
  Workload w;
  w.name = "scripted";
  w.machine_nodes = 128;
  w.jobs = {
      Job{1, 0.0, 300.0, 310.0, 64},   // pins half the machine for a while
      Job{2, 10.0, 100.0, 110.0, 128}, // blocked head, gets the reservation
      Job{3, 20.0, 50.0, 60.0, 32},    // backfill fodder (finishes in time)
      Job{4, 30.0, 40.0, 45.0, 32},    // more fodder
      Job{5, 35.0, 30.0, 35.0, 16},    // more fodder
  };
  normalize(w);
  const FailureTrace trace({FailureEvent{40.0, 0}}, 128);
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.5;
  config.sched.algorithm = algorithm;
  std::ostringstream out;
  obs::TraceSink sink(out);
  config.obs.trace = &sink;
  run_simulation(w, trace, config);
  return out.str();
}

obs::AuditReport audit_string(const std::string& trace) {
  obs::AuditOptions opts;
  opts.strict = true;
  std::istringstream in(trace);
  return obs::audit_trace(in, opts);
}

bool has_code(const obs::AuditReport& report, obs::ViolationCode code) {
  return std::any_of(
      report.violations.begin(), report.violations.end(),
      [code](const obs::Violation& v) { return v.code == code; });
}

TEST(ReservationAudit, AllPortfolioTracesPassStrict) {
  for (const SchedAlgorithm a :
       {SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
        SchedAlgorithm::kConservative, SchedAlgorithm::kEasyHoldback}) {
    const std::string trace = traced_sim(a);
    const obs::AuditReport report = audit_string(trace);
    EXPECT_TRUE(report.ok()) << to_string(a) << ": "
                             << report.violations.size() << " violations";
    if (a != SchedAlgorithm::kKrevat) {
      EXPECT_NE(trace.find("\"algorithm\":\"" + std::string(to_string(a)) +
                           "\""),
                std::string::npos);
      EXPECT_NE(trace.find("\"res_time\":"), std::string::npos)
          << to_string(a) << ": no backfill carried reservation provenance";
    } else {
      // Pre-seam byte identity: the default algorithm must not grow fields.
      EXPECT_EQ(trace.find("\"algorithm\":"), std::string::npos);
      EXPECT_EQ(trace.find("\"res_time\":"), std::string::npos);
    }
  }
}

TEST(ReservationAudit, StrippedProvenanceIsCaught) {
  std::string trace = traced_sim(SchedAlgorithm::kEasy);
  // Remove the res fields from the first backfill decision that has them.
  const auto at = trace.find(",\"res_time\":");
  ASSERT_NE(at, std::string::npos);
  const auto end = trace.find('}', at);
  ASSERT_NE(end, std::string::npos);
  trace.erase(at, end - at);
  const obs::AuditReport report = audit_string(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, obs::ViolationCode::kReservation));
}

TEST(ReservationAudit, ForeignProvenanceOnKrevatTraceIsCaught) {
  std::string trace = traced_sim(SchedAlgorithm::kKrevat);
  // Graft reservation fields onto a krevat backfill decision: the auditor
  // must reject provenance the declared algorithm cannot have produced.
  const auto at = trace.find("\"backfill\":true}");
  ASSERT_NE(at, std::string::npos);
  trace.insert(at + std::strlen("\"backfill\":true"),
               ",\"res_time\":1.0,\"res_entry\":0");
  const obs::AuditReport report = audit_string(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, obs::ViolationCode::kReservation));
}

}  // namespace
}  // namespace bgl
