#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bgl {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(WeightedStats, WeightedMean) {
  WeightedStats w;
  w.add(10.0, 1.0);
  w.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(w.weighted_mean(), 17.5);
  EXPECT_DOUBLE_EQ(w.total_weight(), 4.0);
}

TEST(WeightedStats, NegativeWeightThrows) {
  WeightedStats w;
  EXPECT_THROW(w.add(1.0, -0.5), ContractViolation);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string text = h.render();
  EXPECT_NE(text.find('1'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

TEST(Percentile, ExactQuartiles) {
  PercentileTracker p;
  for (int i = 1; i <= 5; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  PercentileTracker p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
}

TEST(Percentile, AddAfterQueryResorts) {
  PercentileTracker p;
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
  p.add(1.0);
  p.add(9.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
}

}  // namespace
}  // namespace bgl
