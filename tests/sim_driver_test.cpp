// Scenario tests of the simulation driver with hand-built workloads and
// scripted failure traces, where every metric can be checked in closed form.
#include "sim/driver.hpp"

#include <gtest/gtest.h>

namespace bgl {
namespace {

Workload make_workload(std::vector<Job> jobs) {
  Workload w;
  w.name = "scripted";
  w.machine_nodes = 128;
  w.jobs = std::move(jobs);
  normalize(w);
  return w;
}

SimConfig base_config(SchedulerKind kind = SchedulerKind::kKrevat) {
  SimConfig config;
  config.scheduler = kind;
  config.collect_outcomes = true;
  return config;
}

TEST(Driver, SingleJobNoFailures) {
  const Workload w = make_workload({Job{1, 0.0, 100.0, 100.0, 64}});
  const FailureTrace trace({}, 128);
  const SimResult r = run_simulation(w, trace, base_config());

  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_EQ(r.job_kills, 0u);
  EXPECT_DOUBLE_EQ(r.span, 100.0);
  EXPECT_DOUBLE_EQ(r.avg_wait, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_response, 100.0);
  EXPECT_DOUBLE_EQ(r.avg_bounded_slowdown, 1.0);
  // util = 64*100 / (100*128) = 0.5; unused = (128-64)*100/(100*128) = 0.5.
  EXPECT_NEAR(r.utilization, 0.5, 1e-12);
  EXPECT_NEAR(r.unused, 0.5, 1e-12);
  EXPECT_NEAR(r.lost, 0.0, 1e-12);
}

TEST(Driver, TwoJobsSequentialWhenMachineFull) {
  const Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 128},
      Job{2, 0.0, 50.0, 50.0, 128},
  });
  const FailureTrace trace({}, 128);
  const SimResult r = run_simulation(w, trace, base_config());

  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_DOUBLE_EQ(r.span, 150.0);
  ASSERT_EQ(r.outcomes.size(), 2u);
  // FCFS: job 1 runs [0,100], job 2 runs [100,150].
  const JobOutcome& j2 = r.outcomes[1];
  EXPECT_EQ(j2.id, 2u);
  EXPECT_DOUBLE_EQ(j2.last_start, 100.0);
  EXPECT_DOUBLE_EQ(j2.wait(), 100.0);
  EXPECT_DOUBLE_EQ(j2.response(), 150.0);
  // Machine is always fully busy with queued demand: unused = 0, util = 1.
  EXPECT_NEAR(r.utilization, 1.0, 1e-12);
  EXPECT_NEAR(r.unused, 0.0, 1e-12);
}

TEST(Driver, ParallelJobsShareTorus) {
  const Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 64},
      Job{2, 0.0, 100.0, 100.0, 64},
  });
  const FailureTrace trace({}, 128);
  const SimResult r = run_simulation(w, trace, base_config());
  EXPECT_DOUBLE_EQ(r.span, 100.0);  // both run concurrently
  EXPECT_DOUBLE_EQ(r.avg_wait, 0.0);
  EXPECT_NEAR(r.utilization, 1.0, 1e-12);
}

TEST(Driver, FailureKillsAndRestartsJob) {
  // Job runs [0,100) on the full machine; node 0 fails at t=50; the job
  // restarts from scratch and completes at 150.
  const Workload w = make_workload({Job{1, 0.0, 100.0, 100.0, 128}});
  const FailureTrace trace({{50.0, 0}}, 128);
  const SimResult r = run_simulation(w, trace, base_config());

  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_EQ(r.job_kills, 1u);
  EXPECT_EQ(r.failures_hitting_jobs, 1u);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].restarts, 1);
  EXPECT_DOUBLE_EQ(r.outcomes[0].last_start, 50.0);
  EXPECT_DOUBLE_EQ(r.outcomes[0].finish, 150.0);
  EXPECT_DOUBLE_EQ(r.span, 150.0);
  // 50 node-seconds * 128 nodes of work destroyed.
  EXPECT_DOUBLE_EQ(r.work_lost_node_seconds, 50.0 * 128.0);
  // util = 128*100/(150*128) = 2/3; lost = 1/3 (queue always demands full
  // machine, so unused = 0).
  EXPECT_NEAR(r.utilization, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.lost, 1.0 / 3.0, 1e-12);
}

TEST(Driver, FailureOnIdleNodeHarmless) {
  const Workload w = make_workload({Job{1, 10.0, 100.0, 100.0, 1}});
  // Failures before arrival, on idle nodes, and after completion.
  const FailureTrace trace({{5.0, 3}, {50.0, 100}, {500.0, 0}}, 128);
  SimConfig config = base_config();
  const SimResult r = run_simulation(w, trace, config);
  EXPECT_EQ(r.job_kills, 0u);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].restarts, 0);
}

TEST(Driver, BalancingWithPredictionAvoidsKill) {
  // Two half-machine placements available; node 5 (in the z<4 half under
  // the default catalog order) fails at t=50. With confidence 1.0 the
  // balancing scheduler must place the job on nodes that exclude node 5 and
  // avoid the kill entirely.
  const Workload w = make_workload({Job{1, 0.0, 100.0, 100.0, 64}});
  const FailureTrace trace({{50.0, 5}}, 128);

  SimConfig unaware = base_config(SchedulerKind::kKrevat);
  const SimResult r_unaware = run_simulation(w, trace, unaware);

  SimConfig aware = base_config(SchedulerKind::kBalancing);
  aware.alpha = 1.0;
  const SimResult r_aware = run_simulation(w, trace, aware);

  EXPECT_EQ(r_aware.job_kills, 0u);
  EXPECT_DOUBLE_EQ(r_aware.span, 100.0);
  // The fault-oblivious baseline happens to pick the doomed half here (its
  // first candidate contains node 5) and pays a restart.
  EXPECT_EQ(r_unaware.job_kills, 1u);
  EXPECT_GT(r_unaware.span, r_aware.span);
}

TEST(Driver, TieBreakZeroAccuracyEqualsKrevat) {
  const Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 64},
      Job{2, 10.0, 200.0, 200.0, 32},
      Job{3, 20.0, 50.0, 80.0, 64},
      Job{4, 30.0, 300.0, 300.0, 128},
  });
  const FailureTrace trace({{120.0, 17}, {340.0, 99}}, 128);

  SimConfig krevat = base_config(SchedulerKind::kKrevat);
  SimConfig tiebreak = base_config(SchedulerKind::kTieBreak);
  tiebreak.alpha = 0.0;

  const SimResult a = run_simulation(w, trace, krevat);
  const SimResult b = run_simulation(w, trace, tiebreak);
  EXPECT_DOUBLE_EQ(a.avg_response, b.avg_response);
  EXPECT_DOUBLE_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.job_kills, b.job_kills);
}

TEST(Driver, BalancingZeroConfidenceEqualsKrevat) {
  const Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 48},
      Job{2, 5.0, 120.0, 150.0, 96},
      Job{3, 9.0, 60.0, 60.0, 32},
      Job{4, 14.0, 30.0, 40.0, 16},
  });
  const FailureTrace trace({{80.0, 2}, {90.0, 64}}, 128);

  SimConfig krevat = base_config(SchedulerKind::kKrevat);
  SimConfig balancing = base_config(SchedulerKind::kBalancing);
  balancing.alpha = 0.0;

  const SimResult a = run_simulation(w, trace, krevat);
  const SimResult b = run_simulation(w, trace, balancing);
  EXPECT_DOUBLE_EQ(a.avg_response, b.avg_response);
  EXPECT_DOUBLE_EQ(a.avg_bounded_slowdown, b.avg_bounded_slowdown);
  EXPECT_EQ(a.job_kills, b.job_kills);
}

TEST(Driver, KilledJobKeepsFcfsPriority) {
  // Job 1 (full machine) is killed at t=50; job 2 arrived at t=1. After the
  // kill, job 1 must still start before job 2 (original arrival order).
  const Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 128},
      Job{2, 1.0, 10.0, 10.0, 128},
  });
  const FailureTrace trace({{50.0, 0}}, 128);
  SimConfig config = base_config();
  config.sched.backfill = BackfillMode::kNone;
  const SimResult r = run_simulation(w, trace, config);
  ASSERT_EQ(r.outcomes.size(), 2u);
  // Outcomes are recorded in completion order: job 1 then job 2.
  EXPECT_EQ(r.outcomes[0].id, 1u);
  EXPECT_DOUBLE_EQ(r.outcomes[0].finish, 150.0);
  EXPECT_EQ(r.outcomes[1].id, 2u);
  EXPECT_DOUBLE_EQ(r.outcomes[1].last_start, 150.0);
}

TEST(Driver, CheckpointingReducesLostWork) {
  const Workload w = make_workload({Job{1, 0.0, 100.0, 100.0, 128}});
  const FailureTrace trace({{95.0, 0}}, 128);

  SimConfig no_ckpt = base_config();
  const SimResult r_plain = run_simulation(w, trace, no_ckpt);
  // Killed at 95, restart from scratch: finish = 95 + 100 = 195.
  EXPECT_DOUBLE_EQ(r_plain.outcomes[0].finish, 195.0);

  SimConfig with_ckpt = base_config();
  with_ckpt.ckpt.enabled = true;
  with_ckpt.ckpt.interval = 30.0;
  with_ckpt.ckpt.overhead = 1.0;
  with_ckpt.ckpt.restart_overhead = 2.0;
  const SimResult r_ckpt = run_simulation(w, trace, with_ckpt);
  // Wall plan: work 100, 3 checkpoints (30/60/90) -> wall 103, ckpts done at
  // wall 31, 62, 93. Killed at 95 -> saved 90, remaining 10 + 2 restart.
  // Finish = 95 + 12 = 107.
  EXPECT_EQ(r_ckpt.job_kills, 1u);
  EXPECT_DOUBLE_EQ(r_ckpt.outcomes[0].finish, 107.0);
  EXPECT_LT(r_ckpt.work_lost_node_seconds, r_plain.work_lost_node_seconds);
}

TEST(Driver, DownForSemanticsDelaysReuse) {
  // Node 0 fails at t=10 and stays down 100 s. A 128-node job arriving at
  // t=20 cannot start until t=110.
  const Workload w = make_workload({Job{1, 20.0, 10.0, 10.0, 128}});
  const FailureTrace trace({{10.0, 0}}, 128);
  SimConfig config = base_config();
  config.failure_semantics = FailureSemantics::kDownFor;
  config.node_downtime = 100.0;
  const SimResult r = run_simulation(w, trace, config);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(r.outcomes[0].last_start, 110.0);

  // Transient semantics: starts immediately.
  SimConfig transient = base_config();
  const SimResult r2 = run_simulation(w, trace, transient);
  EXPECT_DOUBLE_EQ(r2.outcomes[0].last_start, 20.0);
}

TEST(Driver, EmptyWorkload) {
  Workload w;
  w.machine_nodes = 128;
  const FailureTrace trace({}, 128);
  const SimResult r = run_simulation(w, trace, base_config());
  EXPECT_EQ(r.jobs_completed, 0u);
  EXPECT_DOUBLE_EQ(r.span, 0.0);
}

TEST(Driver, SharedCatalogMatchesOwned) {
  const Workload w = make_workload({
      Job{1, 0.0, 100.0, 100.0, 37},
      Job{2, 3.0, 40.0, 60.0, 64},
  });
  const FailureTrace trace({{25.0, 11}}, 128);
  const SimConfig config = base_config();
  const PartitionCatalog catalog(Dims::bluegene_l());
  const SimResult a = run_simulation(w, trace, config);
  const SimResult b = run_simulation(w, trace, config, &catalog);
  EXPECT_DOUBLE_EQ(a.avg_response, b.avg_response);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Driver, OversizedJobClampedToMachine) {
  const Workload w = make_workload({Job{1, 0.0, 10.0, 10.0, 200}});
  const FailureTrace trace({}, 128);
  const SimResult r = run_simulation(w, trace, base_config());
  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_EQ(r.outcomes[0].size, 128);
}

}  // namespace
}  // namespace bgl
