#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bgl::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleRethrowsFirstError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, SingleThreadRunsInlineInOrder) {
  // threads <= 1 must run on the caller's thread in index order: the serial
  // path is the reference ordering that parallel sweeps are compared to.
  std::vector<std::size_t> order;
  parallel_for(16, 1, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, PropagatesWorkerException) {
  EXPECT_THROW(parallel_for(64, 4,
                            [](std::size_t i) {
                              if (i == 13) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace bgl::util
